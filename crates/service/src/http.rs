//! Hand-rolled HTTP/1.1 request parsing and response writing over
//! `std::net` (the build environment has no crate registry, so there is no
//! hyper/axum; the grammar implemented here is the small subset the service
//! needs: request line, headers, `Content-Length` bodies, query strings).

use std::fmt;
use std::io::{self, BufReader, Cursor, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Maximum accepted size of the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Wall-clock budget for receiving the request head. The socket's
/// per-read timeout resets on every byte, so without a cumulative
/// deadline a client dribbling one byte per timeout window could park an
/// acceptor for days (16 KB head × 30 s/byte ≈ 5 days).
pub const HEAD_DEADLINE: Duration = Duration::from_secs(10);

/// Wall-clock budget for receiving the request body, measured from the
/// end of the head. Generous enough for a legitimately slow client to
/// push the maximum body (64 MB in ~2 minutes is ~0.5 MB/s), but bounded.
pub const BODY_DEADLINE: Duration = Duration::from_secs(120);

/// How long a kept-alive connection may sit idle between requests before
/// the server closes it. Much shorter than [`HEAD_DEADLINE`]: an idle
/// keep-alive connection parks an acceptor, and a well-behaved client that
/// wants another request sends it immediately.
pub const KEEPALIVE_IDLE: Duration = Duration::from_secs(5);

/// Errors surfaced while reading a request (mapped to 4xx responses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The request line or headers were not parseable HTTP/1.1.
    Malformed(String),
    /// The head or declared body exceeded the configured limits.
    TooLarge(String),
    /// The request was not received within its wall-clock deadline.
    Timeout(String),
    /// The socket failed mid-request.
    Io(String),
    /// The connection ended (or went idle past its deadline) before a
    /// single byte of a new request arrived — a clean end of a kept-alive
    /// connection, not an error worth a response.
    Closed,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Malformed(detail) => write!(f, "malformed request: {detail}"),
            HttpError::TooLarge(detail) => write!(f, "request too large: {detail}"),
            HttpError::Timeout(detail) => write!(f, "request timed out: {detail}"),
            HttpError::Io(detail) => write!(f, "request read failed: {detail}"),
            HttpError::Closed => write!(f, "connection closed between requests"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Parsed request line and headers; the body (if any) is read separately
/// through [`RequestHead::body_reader`] so large edge lists stream straight
/// from the socket into the graph parser.
#[derive(Debug)]
pub struct RequestHead {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path without the query string (e.g. `/v1/color`).
    pub path: String,
    /// Decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Value of `Content-Length` (0 when absent).
    pub content_length: usize,
    /// Whether the client asked for the connection to be closed after this
    /// request (`Connection: close`, or HTTP/1.0 without `keep-alive`).
    pub close: bool,
    /// Wall-clock deadline for receiving the rest of the body.
    body_deadline: Instant,
    /// Body bytes already consumed from the socket while buffering the head.
    leftover: Vec<u8>,
    /// Bytes of the *next* pipelined request read while buffering this one
    /// (beyond `Content-Length`); [`RequestHead::into_pipelined`] hands them
    /// to the next `read_head` on a kept-alive connection.
    pipelined: Vec<u8>,
    /// Body bytes taken off the socket so far (leftover bytes count when
    /// they are moved into a reader). `content_length - body_consumed` is
    /// what a drain still has to pull from the socket before the connection
    /// can be reused.
    body_consumed: usize,
}

impl RequestHead {
    /// First value of query parameter `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(key, _)| key == name)
            .map(|(_, value)| value.as_str())
    }

    /// A buffered reader over exactly the (not yet consumed) request body:
    /// the already-read leftover bytes chained with the rest of the socket.
    /// Reads fail once [`BODY_DEADLINE`] has passed since the head was
    /// received, so a dribbling client cannot hold an acceptor
    /// indefinitely. Socket progress is tracked, so a later
    /// [`RequestHead::drain`] knows exactly how many bytes are still
    /// outstanding.
    pub fn body_reader<'h, 's>(&'h mut self, stream: &'s mut TcpStream) -> BodyReader<'h, 's> {
        let leftover = std::mem::take(&mut self.leftover);
        self.body_consumed += leftover.len();
        let remaining = (self.content_length - self.body_consumed) as u64;
        let bounded = DeadlineRead {
            inner: stream,
            deadline: self.body_deadline,
        };
        let counted = CountingRead {
            inner: bounded,
            consumed: &mut self.body_consumed,
        };
        BufReader::new(Cursor::new(leftover).chain(counted.take(remaining)))
    }

    /// Body bytes not yet taken off the socket.
    pub fn unread_body_bytes(&self) -> usize {
        self.content_length - self.body_consumed - self.leftover.len()
    }

    /// Reads and discards whatever part of the body is still on the socket,
    /// returning whether the socket is now positioned at the end of this
    /// request (the precondition for serving another request on the same
    /// connection). Safe to call any number of times, before or after
    /// [`RequestHead::body_reader`].
    pub fn drain(&mut self, stream: &mut TcpStream) -> bool {
        self.body_consumed += self.leftover.len();
        self.leftover.clear();
        let mut remaining = self.content_length - self.body_consumed;
        if remaining == 0 {
            return true;
        }
        // Discard with a manual loop so progress is counted per read: if a
        // read fails partway, `body_consumed` still reflects the true
        // socket position and a later drain resumes exactly where this one
        // stopped (a lost partial count would make a retry over-read into
        // the next pipelined request).
        let mut bounded = DeadlineRead {
            inner: stream,
            deadline: self.body_deadline,
        };
        let mut chunk = [0u8; 8192];
        while remaining > 0 {
            let want = chunk.len().min(remaining);
            match bounded.read(&mut chunk[..want]) {
                Ok(0) | Err(_) => return false,
                Ok(read) => {
                    self.body_consumed += read;
                    remaining -= read;
                }
            }
        }
        true
    }

    /// Hands over any bytes of the next pipelined request that arrived
    /// while this one was being buffered.
    pub fn into_pipelined(self) -> Vec<u8> {
        self.pipelined
    }

    /// Reads the whole body into memory (for small bodies / tests).
    ///
    /// # Errors
    ///
    /// [`HttpError::Io`] if the socket ends before `Content-Length` bytes.
    pub fn read_body(&mut self, stream: &mut TcpStream) -> Result<Vec<u8>, HttpError> {
        let expected = self.content_length;
        let mut body = Vec::with_capacity(expected.min(1 << 20));
        self.body_reader(stream)
            .read_to_end(&mut body)
            .map_err(|error| HttpError::Io(error.to_string()))?;
        if body.len() < expected {
            return Err(HttpError::Io(format!(
                "body ended after {} of {} bytes",
                body.len(),
                expected
            )));
        }
        Ok(body)
    }
}

/// The streaming request-body reader: leftover bytes buffered with the
/// head, chained with the deadline-bounded, progress-counted remainder of
/// the socket.
pub type BodyReader<'h, 's> = BufReader<
    io::Chain<Cursor<Vec<u8>>, io::Take<CountingRead<'h, DeadlineRead<&'s mut TcpStream>>>>,
>;

/// A reader that records how many bytes it delivered into a caller-owned
/// counter (how [`RequestHead`] learns what a body reader took off the
/// socket).
pub struct CountingRead<'h, R> {
    inner: R,
    consumed: &'h mut usize,
}

impl<R: Read> Read for CountingRead<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let read = self.inner.read(buf)?;
        *self.consumed += read;
        Ok(read)
    }
}

/// A reader that fails with `TimedOut` once a wall-clock deadline passes.
/// The socket's per-read timeout only bounds a single read and resets on
/// every byte; this bounds the whole transfer.
pub struct DeadlineRead<R> {
    inner: R,
    deadline: Instant,
}

impl<R: Read> Read for DeadlineRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if Instant::now() >= self.deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "body not received within the request deadline",
            ));
        }
        self.inner.read(buf)
    }
}

/// Decodes `%XX` escapes and `+` (space) in a query component.
fn percent_decode(raw: &str) -> String {
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|pair| {
                    std::str::from_utf8(pair)
                        .ok()
                        .and_then(|s| u8::from_str_radix(s, 16).ok())
                });
                match hex {
                    Some(byte) => {
                        out.push(byte);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            byte => {
                out.push(byte);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a request target into path and decoded query pairs.
fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    let (path, query_string) = match target.split_once('?') {
        Some((path, query)) => (path, query),
        None => (target, ""),
    };
    let query = query_string
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((key, value)) => (percent_decode(key), percent_decode(value)),
            None => (percent_decode(pair), String::new()),
        })
        .collect();
    (percent_decode(path), query)
}

/// Reads and parses one request head from the stream. The head must
/// arrive before `head_deadline` (callers pass roughly
/// `Instant::now() + HEAD_DEADLINE`, or `+ KEEPALIVE_IDLE` between
/// requests of a kept-alive connection); the body is separately bounded by
/// [`BODY_DEADLINE`] from the moment the head completes.
///
/// `carry` seeds the buffer with bytes a previous request on the same
/// connection already pulled off the socket (pipelined clients). With
/// `idle_close_ok` (kept-alive connections between requests), an EOF,
/// timeout or read failure *before any byte of a new request* is reported
/// as [`HttpError::Closed`] — a clean end of the connection, not an error.
///
/// # Errors
///
/// [`HttpError::Malformed`] for grammar violations, [`HttpError::TooLarge`]
/// when the head exceeds [`MAX_HEAD_BYTES`] or the declared body exceeds
/// `max_body`, [`HttpError::Timeout`] when the deadline passes first,
/// [`HttpError::Io`] for socket failures, [`HttpError::Closed`] for a
/// clean between-requests close.
pub fn read_head(
    stream: &mut TcpStream,
    max_body: usize,
    head_deadline: Instant,
    carry: Vec<u8>,
    idle_close_ok: bool,
) -> Result<RequestHead, HttpError> {
    let mut buffer = carry;
    buffer.reserve(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buffer) {
            break pos;
        }
        if buffer.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge(format!(
                "head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        // Cumulative deadline: the per-read socket timeout resets on every
        // byte, so it alone cannot bound a dribbling client.
        if Instant::now() >= head_deadline {
            if idle_close_ok && buffer.is_empty() {
                return Err(HttpError::Closed);
            }
            return Err(HttpError::Timeout(
                "headers not received within the request deadline".to_string(),
            ));
        }
        let read = match stream.read(&mut chunk) {
            Ok(read) => read,
            Err(error) => {
                if idle_close_ok && buffer.is_empty() {
                    return Err(HttpError::Closed);
                }
                return Err(HttpError::Io(error.to_string()));
            }
        };
        if read == 0 {
            if buffer.is_empty() {
                return Err(HttpError::Closed);
            }
            return Err(HttpError::Malformed(
                "connection closed before end of headers".to_string(),
            ));
        }
        buffer.extend_from_slice(&chunk[..read]);
    };

    let head_text = String::from_utf8_lossy(&buffer[..head_end]).into_owned();
    let rest = &buffer[head_end + 4..];
    let mut lines = head_text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".to_string()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing method".to_string()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".to_string()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".to_string()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported version `{version}`"
        )));
    }

    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; an explicit
    // `Connection:` header overrides either way.
    let mut close = version == "HTTP/1.0";
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line `{line}`")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse::<usize>().map_err(|_| {
                HttpError::Malformed(format!("bad Content-Length `{}`", value.trim()))
            })?;
        }
        if name.trim().eq_ignore_ascii_case("connection") {
            let value = value.trim().to_ascii_lowercase();
            if value.split(',').any(|token| token.trim() == "close") {
                close = true;
            } else if value.split(',').any(|token| token.trim() == "keep-alive") {
                close = false;
            }
        }
        // Chunked bodies are not decodable here; rejecting explicitly beats
        // misreading the body as empty and resetting the connection.
        if name.trim().eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::Malformed(format!(
                "Transfer-Encoding `{}` is not supported; send a Content-Length body",
                value.trim()
            )));
        }
    }
    if content_length > max_body {
        return Err(HttpError::TooLarge(format!(
            "declared body of {content_length} bytes exceeds the {max_body}-byte limit"
        )));
    }

    // Split the already-buffered remainder into this request's body prefix
    // and any pipelined bytes of the next request.
    let body_bytes = content_length.min(rest.len());
    let leftover = rest[..body_bytes].to_vec();
    let pipelined = rest[body_bytes..].to_vec();

    let (path, query) = parse_target(target);
    Ok(RequestHead {
        method,
        path,
        query,
        content_length,
        close,
        body_deadline: Instant::now() + BODY_DEADLINE,
        leftover,
        pipelined,
        body_consumed: 0,
    })
}

/// Position of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buffer: &[u8]) -> Option<usize> {
    buffer.windows(4).position(|window| window == b"\r\n\r\n")
}

/// An HTTP response ready to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (200, 404, …).
    pub status: u16,
    /// Content type header value.
    pub content_type: &'static str,
    /// Extra headers (name, value).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Standard reason phrase for the status code.
    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            409 => "Conflict",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }

    /// Serializes the response onto the stream, advertising
    /// `Connection: keep-alive` or `Connection: close` according to whether
    /// the server will serve another request on this connection.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn write_to(&self, stream: &mut TcpStream, keep_alive: bool) -> io::Result<()> {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_targets_and_query_strings() {
        let (path, query) = parse_target("/v1/color?alpha=2&runtime=parallel&flag");
        assert_eq!(path, "/v1/color");
        assert_eq!(
            query,
            vec![
                ("alpha".to_string(), "2".to_string()),
                ("runtime".to_string(), "parallel".to_string()),
                ("flag".to_string(), String::new()),
            ]
        );
        let (path, query) = parse_target("/plain");
        assert_eq!(path, "/plain");
        assert!(query.is_empty());
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%2f%3D"), "/=");
    }

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn deadline_read_cuts_off_slow_transfers() {
        let mut fast = DeadlineRead {
            inner: Cursor::new(b"0 1\n".to_vec()),
            deadline: Instant::now() + Duration::from_secs(60),
        };
        let mut out = String::new();
        fast.read_to_string(&mut out).unwrap();
        assert_eq!(out, "0 1\n");

        let mut expired = DeadlineRead {
            inner: Cursor::new(b"0 1\n".to_vec()),
            deadline: Instant::now() - Duration::from_secs(1),
        };
        let error = expired.read_to_string(&mut String::new()).unwrap_err();
        assert_eq!(error.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn read_head_enforces_its_deadline() {
        // A client that sends a partial head and then dribbles must be cut
        // off by the cumulative deadline, not held by per-read timeouts.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        std::io::Write::write_all(&mut client, b"GET / HT").unwrap();
        server_side
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        // The deadline has already passed: the incomplete head times out
        // instead of waiting for more bytes.
        let error = read_head(
            &mut server_side,
            1024,
            Instant::now() - Duration::from_secs(1),
            Vec::new(),
            false,
        )
        .unwrap_err();
        assert!(matches!(error, HttpError::Timeout(_)), "{error}");
        // Between requests of a kept-alive connection the same expiry is a
        // clean close, not a timeout worth a 408.
        let error = read_head(
            &mut server_side,
            1024,
            Instant::now() - Duration::from_secs(1),
            Vec::new(),
            true,
        )
        .unwrap_err();
        assert_eq!(error, HttpError::Closed);
        drop(client);
    }

    #[test]
    fn drain_counts_partial_progress_across_retries() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        server_side
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        // 8-byte body, only 4 bytes sent so far.
        let wire = "POST /v1/color HTTP/1.1\r\nContent-Length: 8\r\n\r\n0 1\n";
        std::io::Write::write_all(&mut client, wire.as_bytes()).unwrap();
        let mut head = read_head(
            &mut server_side,
            1024,
            Instant::now() + Duration::from_secs(5),
            Vec::new(),
            false,
        )
        .unwrap();
        // First drain discards the 4 available bytes, then times out — it
        // must report failure but keep the partial progress.
        assert!(!head.drain(&mut server_side));
        assert_eq!(head.unread_body_bytes(), 4);
        // The client resumes: rest of the body plus a pipelined request.
        std::io::Write::write_all(&mut client, b"2 3\nGET /healthz HTTP/1.1\r\n\r\n").unwrap();
        // The retried drain consumes exactly the 4 outstanding bytes and
        // leaves the socket aligned on the pipelined request head.
        assert!(head.drain(&mut server_side));
        assert_eq!(head.unread_body_bytes(), 0);
        let head = read_head(
            &mut server_side,
            1024,
            Instant::now() + Duration::from_secs(5),
            head.into_pipelined(),
            true,
        )
        .unwrap();
        assert_eq!(head.path, "/healthz");
        drop(client);
    }

    #[test]
    fn read_head_parses_connection_and_pipelined_bytes() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        // One POST with a 4-byte body, immediately followed by a pipelined
        // GET with Connection: close.
        let wire = "POST /v1/color HTTP/1.1\r\nContent-Length: 4\r\n\r\n0 1\nGET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
        std::io::Write::write_all(&mut client, wire.as_bytes()).unwrap();
        let mut head = read_head(
            &mut server_side,
            1024,
            Instant::now() + Duration::from_secs(5),
            Vec::new(),
            false,
        )
        .unwrap();
        assert_eq!(head.method, "POST");
        assert!(!head.close, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(head.read_body(&mut server_side).unwrap(), b"0 1\n");
        assert!(head.drain(&mut server_side), "body fully consumed");
        assert_eq!(head.unread_body_bytes(), 0);
        let carry = head.into_pipelined();
        assert!(!carry.is_empty(), "pipelined GET was buffered");
        let head = read_head(
            &mut server_side,
            1024,
            Instant::now() + Duration::from_secs(5),
            carry,
            true,
        )
        .unwrap();
        assert_eq!(head.path, "/healthz");
        assert!(head.close, "Connection: close honored");
        drop(client);
    }
}
