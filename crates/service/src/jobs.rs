//! The job manager: a bounded submission queue feeding persistent job
//! workers, with single-flight result caching.
//!
//! Submission never blocks on computation: `POST /v1/color` enqueues a
//! [`JobSpec`] and returns a job id; a fixed set of long-lived worker
//! threads drains the queue and runs [`SparseColoring::color_request`].
//! The AMPC rounds themselves execute on the persistent
//! [`ampc_runtime::WorkerPool`] shared process-wide, so a job costs zero
//! thread spawns end to end.

use std::collections::{HashMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use ampc_coloring::{Algorithm, ColorRequest, ColoringOutcome, SparseColoring};
use ampc_model::ConflictPolicy;
use ampc_runtime::trace::{LatencyHistogram, TraceContext, TraceTimeline};
use ampc_runtime::RuntimeConfig;
use ampc_runtime::{PerfCounters, PerfSink};
use sparse_graph::CsrGraph;

use crate::cache::{CacheCounters, Claim, ResultCache};

/// Tuning knobs of the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Persistent job-worker threads draining the queue.
    pub workers: usize,
    /// Capacity of the bounded submission queue (submissions beyond it are
    /// rejected with `429`).
    pub queue_capacity: usize,
    /// Maximum accepted request-body size in bytes.
    pub max_body_bytes: usize,
    /// Acceptor threads serving HTTP connections.
    pub acceptors: usize,
    /// Maximum node count a submitted edge list may declare (node ids and
    /// `min_nodes` beyond this are rejected with `400` — a tiny request
    /// must not be able to demand an arbitrarily large allocation). The
    /// HTTP layer additionally caps each request proportionally to its
    /// body size, so this is the ceiling for the largest bodies only.
    pub max_graph_nodes: usize,
    /// Ready results retained by the cache (FIFO eviction beyond this).
    pub cache_capacity: usize,
    /// Total size of all cached ready results, measured in nodes plus
    /// directed edges of the pinned graphs (FIFO eviction beyond this) —
    /// entry counts alone would let a few huge entries exhaust memory
    /// while staying under `cache_capacity`.
    pub cache_node_budget: usize,
    /// Terminal job records retained (oldest evicted beyond this, so a
    /// long-running server's jobs map stays bounded).
    pub max_retained_jobs: usize,
    /// Total nodes across the results held by retained terminal jobs
    /// (oldest evicted beyond this) — the record-count cap alone would let
    /// a few huge colorings pin gigabytes.
    pub retained_node_budget: usize,
    /// HTTP/1.1 requests served on one connection before the server closes
    /// it (bounded keep-alive; 1 disables reuse entirely).
    pub max_requests_per_connection: usize,
    /// Age at which a *terminal* job record expires: the TTL-based GC
    /// sweep drops done/failed records older than this on manager
    /// activity, independent of the count/node-budget retention caps.
    /// In-flight jobs never expire.
    pub job_ttl: Duration,
    /// Age at which a *ready result cache entry* expires: the cache sweeps
    /// entries older than this alongside its entry-count / cost-budget
    /// caps, bounding both result staleness and idle-server memory.
    /// In-flight (computing) entries never expire.
    pub cache_ttl: Duration,
    /// Per-job trace-event capacity. Each computed (non-cached) job gets a
    /// [`TraceContext`] with this many pre-allocated event slots; every
    /// AMPC round, simulator phase and backend merge records a span into
    /// it, and the drained timeline is served by
    /// `GET /v1/jobs/{id}/trace`. Events beyond the capacity are dropped
    /// and counted, never blocking the computation. `0` disables per-job
    /// tracing entirely (no buffers, no clock reads).
    pub trace_events: usize,
    /// How many times a job whose computation failed *transiently* — a
    /// caught panic or a round that exhausted its runtime-level retries —
    /// is re-run before it is reported as failed. Deterministic errors
    /// (bad parameters, partition failures) never retry.
    pub job_retries: u32,
    /// Per-AMPC-round wall-clock deadline in milliseconds, enforced by the
    /// runtime backends (an overrunning round attempt is discarded and
    /// retried; persistent overrun fails the round). `0` disables, leaving
    /// any `AMPC_ROUND_DEADLINE_MS` environment setting in force.
    pub round_deadline_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            max_body_bytes: 64 << 20,
            acceptors: 4,
            max_graph_nodes: 1 << 22,
            cache_capacity: 512,
            cache_node_budget: 1 << 23,
            max_retained_jobs: 4096,
            retained_node_budget: 1 << 23,
            max_requests_per_connection: 100,
            job_ttl: Duration::from_secs(600),
            cache_ttl: Duration::from_secs(3600),
            trace_events: 16_384,
            job_retries: 1,
            round_deadline_ms: 0,
        }
    }
}

/// Everything that identifies a coloring job (and therefore its cache key).
#[derive(Debug, Clone, Copy)]
pub struct JobSpec {
    /// The validated algorithm request.
    pub request: ColorRequest,
    /// The duplicate-write merge policy asserted by the client. The
    /// coloring pipeline's rounds pin the paper's min-merge
    /// ([`ConflictPolicy::KeepMin`], Lemma 4.10); the submission path
    /// rejects any other value rather than silently ignoring it.
    pub policy: ConflictPolicy,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            request: ColorRequest::default(),
            policy: ConflictPolicy::KeepMin,
        }
    }
}

/// Total equality: floats compare by bit pattern, so a spec always equals
/// itself. The derived `PartialEq` over `f64` would make a NaN epsilon or
/// delta unequal to itself, and a cache entry that never matches its own
/// spec can neither be fulfilled nor abandoned — a permanent in-flight
/// leak (submission-time validation rejects NaN anyway; this keeps the
/// cache's invariants independent of the HTTP layer).
impl PartialEq for JobSpec {
    fn eq(&self, other: &Self) -> bool {
        let (a, b) = (&self.request, &other.request);
        a.algorithm == b.algorithm
            && a.alpha == b.alpha
            && a.epsilon.to_bits() == b.epsilon.to_bits()
            && a.delta.to_bits() == b.delta.to_bits()
            && a.max_partition_rounds == b.max_partition_rounds
            && a.runtime == b.runtime
            && self.policy == other.policy
    }
}

impl Eq for JobSpec {}

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting in the submission queue (or for an identical in-flight job).
    Queued,
    /// A worker is computing it.
    Running,
    /// Finished successfully.
    Done,
    /// Finished with an error.
    Failed,
}

impl JobStatus {
    /// Lower-case wire label.
    pub fn label(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
        }
    }

    /// Whether the job has reached a terminal state.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobStatus::Done | JobStatus::Failed)
    }
}

struct JobRecord {
    status: JobStatus,
    cached: bool,
    graph_nodes: usize,
    graph_edges: usize,
    spec: JobSpec,
    result: Option<Arc<ColoringOutcome>>,
    error: Option<String>,
    submitted: Instant,
    /// When the record reached a terminal state (the TTL clock).
    finished: Option<Instant>,
    wall_nanos: u64,
    /// The drained span timeline of the computation this job owned.
    /// `None` while in flight, for cached/coalesced jobs (the timeline
    /// belongs to the computing job) and when tracing is disabled.
    timeline: Option<Arc<TraceTimeline>>,
}

/// An immutable snapshot of a job, for rendering and tests.
#[derive(Debug, Clone)]
pub struct JobView {
    /// Job id.
    pub id: u64,
    /// Current status.
    pub status: JobStatus,
    /// Whether the result came from the cache (hit or coalesced) rather
    /// than a computation owned by this job.
    pub cached: bool,
    /// Node count of the submitted graph.
    pub graph_nodes: usize,
    /// Edge count of the submitted graph.
    pub graph_edges: usize,
    /// The submitted spec.
    pub spec: JobSpec,
    /// The outcome, when `Done`.
    pub result: Option<Arc<ColoringOutcome>>,
    /// The error, when `Failed`.
    pub error: Option<String>,
    /// Nanoseconds the computation took (0 for pure cache hits).
    pub wall_nanos: u64,
    /// Nanoseconds since the job was submitted.
    pub age_nanos: u64,
    /// Span timeline of the computation, when this job owned one and
    /// tracing is enabled (`None` for cached results and in-flight jobs).
    pub timeline: Option<Arc<TraceTimeline>>,
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full; retry later.
    QueueFull {
        /// The configured capacity.
        capacity: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "submission queue full ({capacity} jobs); retry later")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Counter snapshot for `/metrics`.
#[derive(Debug, Clone, Copy)]
pub struct ManagerCounters {
    /// Jobs accepted (including cache hits and coalesced jobs).
    pub submitted: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs finished with an error.
    pub failed: u64,
    /// Colorings actually computed to completion (successful cache
    /// misses; failed and panicked runs count under `failed` instead).
    pub computed: u64,
    /// Jobs currently waiting in the queue.
    pub queue_depth: usize,
    /// Configured queue capacity.
    pub queue_capacity: usize,
    /// Jobs currently computing.
    pub running: usize,
    /// Cache counters.
    pub cache: CacheCounters,
    /// Hardware counters summed over every computed job's recorded rounds
    /// (all-zero when `perf_event_open` sampling is unavailable — check
    /// `ampc_runtime::perf::available()` before reading zeros as idle).
    pub perf: PerfCounters,
    /// Computed jobs whose rounds carried at least one nonzero hardware
    /// sample.
    pub perf_sampled_jobs: u64,
    /// Whole-job computations re-run after a transient failure (caught
    /// panic or retry-exhausted round).
    pub jobs_retried: u64,
}

struct QueueItem {
    id: u64,
    key: u64,
    graph: Arc<CsrGraph>,
    spec: JobSpec,
    /// When the item entered the queue (the queue-wait histogram clock).
    enqueued: Instant,
}

/// The jobs map plus the FIFO eviction order, guarded by one mutex.
#[derive(Default)]
struct JobsState {
    records: HashMap<u64, JobRecord>,
    /// Ids that reached a terminal state, oldest first — makes retention
    /// eviction O(1) per completion instead of a scan of the whole map.
    terminal_order: VecDeque<u64>,
    /// Total nodes across the results held by terminal records (the unit
    /// the node-budget eviction is measured in).
    terminal_result_nodes: usize,
}

struct ManagerShared {
    jobs: Mutex<JobsState>,
    job_done: Condvar,
    cache: ResultCache,
    max_retained_jobs: usize,
    retained_node_budget: usize,
    job_ttl: Duration,
    queue_depth: AtomicUsize,
    running: AtomicUsize,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    computed: AtomicU64,
    /// Per-job trace-event capacity (0 disables tracing).
    trace_events: usize,
    /// Transient-failure retry budget per job.
    job_retries: u32,
    jobs_retried: AtomicU64,
    /// Microseconds jobs spent waiting in the submission queue.
    queue_wait_micros: LatencyHistogram,
    /// Microseconds computed (non-cached) jobs took to execute.
    execution_micros: LatencyHistogram,
    /// Hardware-counter totals over computed jobs (one recorded delta per
    /// job that carried samples).
    perf: PerfSink,
}

impl ManagerShared {
    fn finish(&self, id: u64, status: JobStatus, cached: bool, outcome: FinishOutcome) {
        let mut state = self.jobs.lock().expect("jobs lock");
        if let Some(record) = state.records.get_mut(&id) {
            record.status = status;
            record.cached = cached;
            record.finished = Some(Instant::now());
            let mut result_nodes = 0;
            match outcome {
                FinishOutcome::Result {
                    result,
                    wall_nanos,
                    timeline,
                } => {
                    record.result = Some(result);
                    record.wall_nanos = wall_nanos;
                    record.timeline = timeline;
                    result_nodes = record.graph_nodes;
                }
                FinishOutcome::Error(message) => record.error = Some(message),
            }
            state.terminal_result_nodes += result_nodes;
            state.terminal_order.push_back(id);
        }
        self.expire_old_records(&mut state);
        self.evict_old_records(&mut state);
        match status {
            JobStatus::Done => self.completed.fetch_add(1, Ordering::Relaxed),
            _ => self.failed.fetch_add(1, Ordering::Relaxed),
        };
        drop(state);
        self.job_done.notify_all();
    }

    /// The TTL-based GC sweep: drops terminal records older than
    /// `job_ttl`, front-of-deque first (the deque is ordered by completion
    /// time, so the sweep stops at the first fresh record — O(expired) per
    /// call). Runs on manager activity (completions, submissions, the
    /// recent-jobs listing behind `/metrics`), complementing the
    /// count/node-budget caps below with age-based expiry. In-flight jobs
    /// never expire.
    fn expire_old_records(&self, state: &mut JobsState) {
        let now = Instant::now();
        while let Some(&id) = state.terminal_order.front() {
            let expired = match state.records.get(&id) {
                // Already evicted by the budget caps: clean up the deque.
                None => true,
                Some(record) => record
                    .finished
                    .is_some_and(|at| now.duration_since(at) >= self.job_ttl),
            };
            if !expired {
                break;
            }
            state.terminal_order.pop_front();
            if let Some(record) = state.records.remove(&id) {
                if record.result.is_some() {
                    state.terminal_result_nodes = state
                        .terminal_result_nodes
                        .saturating_sub(record.graph_nodes);
                }
            }
        }
    }

    /// Drops the oldest terminal records once the map exceeds the retention
    /// cap — by record count or by total result nodes (a handful of huge
    /// colorings must not pin gigabytes while staying under the count cap).
    /// In-flight jobs are never evicted; the FIFO deque makes this O(1) per
    /// completion.
    fn evict_old_records(&self, state: &mut JobsState) {
        while state.records.len() > self.max_retained_jobs
            || state.terminal_result_nodes > self.retained_node_budget
        {
            let Some(id) = state.terminal_order.pop_front() else {
                break;
            };
            let evictable = state
                .records
                .get(&id)
                .filter(|record| record.status.is_terminal())
                .map(|record| {
                    if record.result.is_some() {
                        record.graph_nodes
                    } else {
                        0
                    }
                });
            if let Some(result_nodes) = evictable {
                state.terminal_result_nodes =
                    state.terminal_result_nodes.saturating_sub(result_nodes);
                state.records.remove(&id);
            }
        }
    }
}

enum FinishOutcome {
    Result {
        result: Arc<ColoringOutcome>,
        wall_nanos: u64,
        timeline: Option<Arc<TraceTimeline>>,
    },
    Error(String),
}

/// The serving subsystem's job orchestrator. Create once, share via `Arc`.
pub struct JobManager {
    config: ServiceConfig,
    shared: Arc<ManagerShared>,
    next_id: AtomicU64,
    queue_tx: Option<SyncSender<QueueItem>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for JobManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobManager")
            .field("workers", &self.workers.len())
            .field("queue_capacity", &self.config.queue_capacity)
            .finish()
    }
}

impl JobManager {
    /// Spawns the persistent job workers and returns the manager.
    pub fn new(config: ServiceConfig) -> Self {
        // The round deadline lives in the runtime (it gates the backends'
        // attempt loops); only a nonzero config value overrides the
        // `AMPC_ROUND_DEADLINE_MS` environment setting.
        if config.round_deadline_ms > 0 {
            ampc_runtime::faults::set_round_deadline_ms(config.round_deadline_ms);
        }
        let shared = Arc::new(ManagerShared {
            jobs: Mutex::new(JobsState::default()),
            job_done: Condvar::new(),
            cache: ResultCache::new(
                config.cache_capacity,
                config.cache_node_budget,
                config.cache_ttl,
            ),
            max_retained_jobs: config.max_retained_jobs.max(1),
            retained_node_budget: config.retained_node_budget.max(1),
            // Floored: a zero TTL would expire a finished job inside
            // `finish()` itself, before any waiter can observe the result.
            job_ttl: config.job_ttl.max(Duration::from_millis(10)),
            queue_depth: AtomicUsize::new(0),
            running: AtomicUsize::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            computed: AtomicU64::new(0),
            trace_events: config.trace_events,
            job_retries: config.job_retries,
            jobs_retried: AtomicU64::new(0),
            queue_wait_micros: LatencyHistogram::new(),
            execution_micros: LatencyHistogram::new(),
            perf: PerfSink::new(),
        });
        let (queue_tx, queue_rx) = sync_channel::<QueueItem>(config.queue_capacity.max(1));
        let queue_rx = Arc::new(Mutex::new(queue_rx));
        let workers = (0..config.workers.max(1))
            .map(|index| {
                let shared = Arc::clone(&shared);
                let queue_rx = Arc::clone(&queue_rx);
                thread::Builder::new()
                    .name(format!("ampc-job-{index}"))
                    .spawn(move || worker_loop(shared, queue_rx))
                    .expect("spawning a job worker failed")
            })
            .collect();
        JobManager {
            config,
            shared,
            next_id: AtomicU64::new(1),
            queue_tx: Some(queue_tx),
            workers,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Submits a job. Identical `(graph, spec)` submissions are served from
    /// the cache, or coalesced onto an in-flight computation so the work
    /// runs once.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the bounded queue is at capacity.
    pub fn submit(&self, graph: Arc<CsrGraph>, spec: JobSpec) -> Result<u64, SubmitError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let key = job_key(&graph, &spec);
        {
            let mut state = self.shared.jobs.lock().expect("jobs lock");
            // Submission is a natural GC point: a busy server sweeps
            // expired terminal records as new work arrives.
            self.shared.expire_old_records(&mut state);
            state.records.insert(
                id,
                JobRecord {
                    status: JobStatus::Queued,
                    cached: false,
                    graph_nodes: graph.num_nodes(),
                    graph_edges: graph.num_edges(),
                    spec,
                    result: None,
                    error: None,
                    submitted: Instant::now(),
                    finished: None,
                    wall_nanos: 0,
                    timeline: None,
                },
            );
        }
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);

        match self.shared.cache.claim(key, &graph, &spec, id) {
            Claim::Hit(result) => {
                self.shared.finish(
                    id,
                    JobStatus::Done,
                    true,
                    FinishOutcome::Result {
                        result,
                        wall_nanos: 0,
                        timeline: None,
                    },
                );
                Ok(id)
            }
            Claim::Coalesced => Ok(id),
            Claim::Compute => {
                let sender = self
                    .queue_tx
                    .as_ref()
                    .expect("queue alive while manager lives");
                // Incremented before the send: a worker may pop the item
                // (and decrement) the instant it lands in the channel.
                self.shared.queue_depth.fetch_add(1, Ordering::Relaxed);
                match sender.try_send(QueueItem {
                    id,
                    key,
                    graph,
                    spec,
                    enqueued: Instant::now(),
                }) {
                    Ok(()) => Ok(id),
                    Err(TrySendError::Full(item)) | Err(TrySendError::Disconnected(item)) => {
                        self.shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        // Roll the claim back and fail any job that managed
                        // to coalesce onto it in the meantime.
                        let error = SubmitError::QueueFull {
                            capacity: self.config.queue_capacity,
                        };
                        for waiter in self.shared.cache.abandon(key, &item.graph, &item.spec) {
                            self.shared.finish(
                                waiter,
                                JobStatus::Failed,
                                false,
                                FinishOutcome::Error(error.to_string()),
                            );
                        }
                        self.shared
                            .jobs
                            .lock()
                            .expect("jobs lock")
                            .records
                            .remove(&id);
                        Err(error)
                    }
                }
            }
        }
    }

    /// A snapshot of job `id`, if it exists.
    pub fn status(&self, id: u64) -> Option<JobView> {
        let state = self.shared.jobs.lock().expect("jobs lock");
        state.records.get(&id).map(|record| view_of(id, record))
    }

    /// Blocks until job `id` reaches a terminal state or `timeout` passes,
    /// returning the latest snapshot (which may still be non-terminal on
    /// timeout), or `None` for an unknown id.
    pub fn wait(&self, id: u64, timeout: Duration) -> Option<JobView> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.jobs.lock().expect("jobs lock");
        loop {
            let view = state.records.get(&id).map(|record| view_of(id, record))?;
            if view.status.is_terminal() {
                return Some(view);
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(view);
            }
            let (guard, _) = self
                .shared
                .job_done
                .wait_timeout(state, deadline - now)
                .expect("jobs lock");
            state = guard;
        }
    }

    /// Snapshots of the most recent `limit` jobs, newest first. Doubles as
    /// a GC point: `/metrics` renders this listing, so even an idle server
    /// probed for metrics sweeps its expired terminal records.
    pub fn recent(&self, limit: usize) -> Vec<JobView> {
        let mut state = self.shared.jobs.lock().expect("jobs lock");
        self.shared.expire_old_records(&mut state);
        let mut ids: Vec<u64> = state.records.keys().copied().collect();
        ids.sort_unstable_by(|a, b| b.cmp(a));
        ids.into_iter()
            .take(limit)
            .map(|id| view_of(id, &state.records[&id]))
            .collect()
    }

    /// Counter snapshot for `/metrics`.
    pub fn counters(&self) -> ManagerCounters {
        ManagerCounters {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            failed: self.shared.failed.load(Ordering::Relaxed),
            computed: self.shared.computed.load(Ordering::Relaxed),
            queue_depth: self.shared.queue_depth.load(Ordering::Relaxed),
            queue_capacity: self.config.queue_capacity,
            running: self.shared.running.load(Ordering::Relaxed),
            cache: self.shared.cache.counters(),
            perf: self.shared.perf.counters(),
            perf_sampled_jobs: self.shared.perf.samples(),
            jobs_retried: self.shared.jobs_retried.load(Ordering::Relaxed),
        }
    }

    /// Microseconds jobs spent waiting in the submission queue
    /// (log-bucketed, lock-free — records concurrently with reads).
    pub fn queue_wait_micros(&self) -> &LatencyHistogram {
        &self.shared.queue_wait_micros
    }

    /// Microseconds computed (non-cached) jobs took to execute.
    pub fn execution_micros(&self) -> &LatencyHistogram {
        &self.shared.execution_micros
    }
}

impl Drop for JobManager {
    fn drop(&mut self) {
        // Closing the queue ends the worker loops once it drains.
        self.queue_tx.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn view_of(id: u64, record: &JobRecord) -> JobView {
    JobView {
        id,
        status: record.status,
        cached: record.cached,
        graph_nodes: record.graph_nodes,
        graph_edges: record.graph_edges,
        spec: record.spec,
        result: record.result.clone(),
        error: record.error.clone(),
        wall_nanos: record.wall_nanos,
        age_nanos: record.submitted.elapsed().as_nanos() as u64,
        timeline: record.timeline.clone(),
    }
}

/// Deterministic trace id of a job: the FNV-1a hash of the job id,
/// rendered as 16 hex digits. Stable across restarts for the same id,
/// echoed in job JSON and the `X-Trace-Id` response header.
pub fn trace_id(job_id: u64) -> String {
    let mut hash = Fnv::new();
    hash.write_u64(job_id);
    format!("{:016x}", hash.finish())
}

fn worker_loop(shared: Arc<ManagerShared>, queue_rx: Arc<Mutex<Receiver<QueueItem>>>) {
    loop {
        let item = {
            let receiver = queue_rx.lock().expect("queue lock");
            receiver.recv()
        };
        let Ok(item) = item else {
            return; // Manager dropped; queue drained.
        };
        shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
        shared.running.fetch_add(1, Ordering::Relaxed);
        {
            let mut state = shared.jobs.lock().expect("jobs lock");
            if let Some(record) = state.records.get_mut(&item.id) {
                record.status = JobStatus::Running;
            }
        }

        shared
            .queue_wait_micros
            .record(item.enqueued.elapsed().as_micros() as u64);

        let started = Instant::now();
        let mut attempt = 0u32;
        let (outcome, timeline) = loop {
            // One pre-allocated trace context per attempt: the fixed-size
            // event buffers are created before the computation starts, so
            // the AMPC rounds themselves stay allocation-free while
            // recording (a retried attempt gets a fresh context — the
            // discarded attempt's spans describe work that was thrown
            // away).
            let trace = (shared.trace_events > 0)
                .then(|| Arc::new(TraceContext::with_capacity(shared.trace_events)));
            // Panic isolation: a panicking computation must neither kill
            // the persistent worker nor leave the cache entry in-flight
            // forever — it becomes a failed job like any other error.
            let caught = panic::catch_unwind(AssertUnwindSafe(|| {
                SparseColoring::color_request_traced(&item.graph, &item.spec.request, trace.clone())
            }));
            // Transient failures — a caught panic, or a round that
            // exhausted the runtime's own bounded retries — may succeed on
            // a clean re-run; deterministic errors never do.
            let transient = match &caught {
                Err(_) => true,
                Ok(Err(ampc_coloring::Error::Coloring(error))) => error.is_transient(),
                Ok(_) => false,
            };
            let outcome = caught.unwrap_or_else(|payload| {
                let detail = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".to_string());
                Err(ampc_coloring::Error::InvalidRequest(format!(
                    "job computation panicked: {detail}"
                )))
            });
            if outcome.is_err() && transient && attempt < shared.job_retries {
                attempt += 1;
                shared.jobs_retried.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            break (outcome, trace.map(|trace| Arc::new(trace.finish())));
        };
        let wall_nanos = started.elapsed().as_nanos() as u64;
        shared.running.fetch_sub(1, Ordering::Relaxed);
        shared.execution_micros.record(wall_nanos / 1_000);

        match outcome {
            Ok(outcome) => {
                shared.computed.fetch_add(1, Ordering::Relaxed);
                // Fold the job's per-round hardware samples into the
                // service-wide totals (skipped when sampling was
                // unavailable and the rounds carry only zeros).
                let mut perf = PerfCounters::default();
                for stats in outcome.metrics.runtime_stats() {
                    perf.add(&PerfCounters {
                        cycles: stats.cycles,
                        instructions: stats.instructions,
                        cache_references: stats.cache_references,
                        cache_misses: stats.cache_misses,
                        branch_misses: stats.branch_misses,
                    });
                }
                if !perf.is_zero() {
                    shared.perf.record(&perf);
                }
                let result = Arc::new(outcome);
                let waiters =
                    shared
                        .cache
                        .fulfill(item.key, &item.graph, &item.spec, Arc::clone(&result));
                shared.finish(
                    item.id,
                    JobStatus::Done,
                    false,
                    FinishOutcome::Result {
                        result: Arc::clone(&result),
                        wall_nanos,
                        timeline,
                    },
                );
                // Coalesced waiters share the result but not the timeline:
                // the spans belong to the computation the owner job ran.
                for waiter in waiters {
                    shared.finish(
                        waiter,
                        JobStatus::Done,
                        true,
                        FinishOutcome::Result {
                            result: Arc::clone(&result),
                            wall_nanos: 0,
                            timeline: None,
                        },
                    );
                }
            }
            Err(error) => {
                let message = error.to_string();
                let waiters = shared.cache.abandon(item.key, &item.graph, &item.spec);
                shared.finish(
                    item.id,
                    JobStatus::Failed,
                    false,
                    FinishOutcome::Error(message.clone()),
                );
                // `cached: false` — a failed waiter never received a cached
                // result, it merely shared the doomed computation.
                for waiter in waiters {
                    shared.finish(
                        waiter,
                        JobStatus::Failed,
                        false,
                        FinishOutcome::Error(message.clone()),
                    );
                }
            }
        }
    }
}

/// Deterministic FNV-1a hash identifying `(graph, spec)` — the cache key.
pub fn job_key(graph: &CsrGraph, spec: &JobSpec) -> u64 {
    let mut hash = Fnv::new();
    hash.write_usize(graph.num_nodes());
    hash.write_usize(graph.num_edges());
    for (u, v) in graph.edges() {
        hash.write_usize(u);
        hash.write_usize(v);
    }
    hash.write_u64(algorithm_tag(spec.request.algorithm));
    match spec.request.alpha {
        None => hash.write_u64(0),
        Some(alpha) => {
            hash.write_u64(1);
            hash.write_usize(alpha);
        }
    }
    hash.write_u64(spec.request.epsilon.to_bits());
    hash.write_u64(spec.request.delta.to_bits());
    hash.write_usize(spec.request.max_partition_rounds);
    match spec.request.runtime {
        RuntimeConfig::Sequential => hash.write_u64(0),
        RuntimeConfig::Parallel { threads, shards } => {
            hash.write_u64(1);
            hash.write_u64(threads.map_or(0, |t| t as u64 + 1));
            hash.write_u64(shards.map_or(0, |s| s as u64 + 1));
        }
        RuntimeConfig::Process { workers } => {
            hash.write_u64(2);
            hash.write_u64(workers.map_or(0, |w| w as u64 + 1));
        }
    }
    hash.write_u64(policy_tag(spec.policy));
    hash.finish()
}

/// Stable numeric tag of an algorithm variant (cache-key component).
fn algorithm_tag(algorithm: Algorithm) -> u64 {
    match algorithm {
        Algorithm::Auto => 0,
        Algorithm::AlphaPower => 1,
        Algorithm::AlphaSquared => 2,
        Algorithm::TwoAlphaPlusOne => 3,
        Algorithm::LargeArboricity => 4,
    }
}

/// Stable numeric tag of a conflict policy (cache-key component).
fn policy_tag(policy: ConflictPolicy) -> u64 {
    match policy {
        ConflictPolicy::KeepMin => 0,
        ConflictPolicy::KeepMax => 1,
        ConflictPolicy::KeepFirst => 2,
        ConflictPolicy::Error => 3,
    }
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse_graph::generators;

    fn small_graph(side: usize) -> Arc<CsrGraph> {
        Arc::new(generators::triangulated_grid(side, side))
    }

    fn spec() -> JobSpec {
        JobSpec {
            request: ColorRequest {
                algorithm: Algorithm::TwoAlphaPlusOne,
                alpha: Some(3),
                ..ColorRequest::default()
            },
            policy: ConflictPolicy::KeepMin,
        }
    }

    #[test]
    fn submit_compute_and_cache_hit() {
        let manager = JobManager::new(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let graph = small_graph(8);
        let first = manager.submit(Arc::clone(&graph), spec()).unwrap();
        let view = manager.wait(first, Duration::from_secs(30)).unwrap();
        assert_eq!(view.status, JobStatus::Done);
        assert!(!view.cached);
        let result = view.result.expect("done jobs carry a result");
        assert!(result.coloring.is_proper(&graph));

        // Identical submission: served from cache without recomputation.
        let second = manager.submit(Arc::clone(&graph), spec()).unwrap();
        let cached = manager.wait(second, Duration::from_secs(30)).unwrap();
        assert_eq!(cached.status, JobStatus::Done);
        assert!(cached.cached);
        assert_eq!(
            cached.result.unwrap().coloring.colors(),
            result.coloring.colors()
        );
        assert_eq!(manager.counters().computed, 1);

        // A different spec computes again.
        let other = manager
            .submit(
                Arc::clone(&graph),
                JobSpec {
                    request: ColorRequest {
                        alpha: Some(4),
                        ..spec().request
                    },
                    ..spec()
                },
            )
            .unwrap();
        let view = manager.wait(other, Duration::from_secs(30)).unwrap();
        assert_eq!(view.status, JobStatus::Done);
        assert_eq!(manager.counters().computed, 2);
    }

    #[test]
    fn concurrent_identical_jobs_compute_once() {
        let manager = Arc::new(JobManager::new(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        }));
        let graph = small_graph(14);

        // Race two identical submissions from separate threads.
        let ids: Vec<u64> = {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let manager = Arc::clone(&manager);
                    let graph = Arc::clone(&graph);
                    thread::spawn(move || manager.submit(graph, spec()).unwrap())
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().unwrap())
                .collect()
        };

        let views: Vec<JobView> = ids
            .iter()
            .map(|&id| manager.wait(id, Duration::from_secs(60)).unwrap())
            .collect();
        for view in &views {
            assert_eq!(view.status, JobStatus::Done, "job {}", view.id);
        }
        // The work ran exactly once; both jobs hold bit-identical results.
        assert_eq!(manager.counters().computed, 1);
        let colors: Vec<&[usize]> = views
            .iter()
            .map(|view| view.result.as_ref().unwrap().coloring.colors())
            .collect();
        assert_eq!(colors[0], colors[1]);
        assert!(
            views.iter().filter(|view| view.cached).count() >= 1,
            "one of the two must be served by the other's computation"
        );
        let counters = manager.counters();
        assert_eq!(counters.cache.misses, 1);
        assert_eq!(counters.cache.hits + counters.cache.coalesced, 1);
    }

    #[test]
    fn failed_jobs_report_structured_errors() {
        let manager = JobManager::new(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        // alpha = 1 grossly underestimates K12's arboricity: partition fails.
        let graph = Arc::new(generators::complete(12));
        let bad = JobSpec {
            request: ColorRequest {
                algorithm: Algorithm::AlphaSquared,
                alpha: Some(1),
                epsilon: 0.1,
                ..ColorRequest::default()
            },
            policy: ConflictPolicy::KeepMin,
        };
        let id = manager.submit(graph, bad).unwrap();
        let view = manager.wait(id, Duration::from_secs(30)).unwrap();
        assert_eq!(view.status, JobStatus::Failed);
        assert!(!view.cached, "a failed job never received a cached result");
        let error = view.error.expect("failed jobs carry an error");
        assert!(error.contains("beta-partition"), "{error}");
        // A failure is not cached: the same submission computes again.
        assert_eq!(manager.counters().cache.entries, 0);
        // And it is not a successful computation either.
        assert_eq!(manager.counters().computed, 0);
        assert_eq!(manager.counters().failed, 1);
    }

    #[test]
    fn terminal_records_are_bounded_by_node_budget() {
        // The budget fits one ~196-node result at a time; a second result
        // evicts the first even though the record-count cap is far away.
        let manager = JobManager::new(ServiceConfig {
            workers: 1,
            retained_node_budget: 200,
            ..ServiceConfig::default()
        });
        let first = manager.submit(small_graph(14), spec()).unwrap();
        let view = manager.wait(first, Duration::from_secs(30)).unwrap();
        assert_eq!(view.status, JobStatus::Done);
        let second = manager.submit(small_graph(13), spec()).unwrap();
        let view = manager.wait(second, Duration::from_secs(30)).unwrap();
        assert_eq!(view.status, JobStatus::Done);
        assert!(
            manager.status(first).is_none(),
            "the oldest result must be evicted to stay under the node budget"
        );
        assert!(manager.status(second).is_some());
    }

    #[test]
    fn terminal_records_expire_after_the_ttl() {
        let manager = JobManager::new(ServiceConfig {
            workers: 1,
            job_ttl: Duration::from_millis(50),
            ..ServiceConfig::default()
        });
        let first = manager.submit(small_graph(8), spec()).unwrap();
        let view = manager.wait(first, Duration::from_secs(30)).unwrap();
        assert_eq!(view.status, JobStatus::Done);
        // Fresh terminal records survive an immediate sweep.
        let _ = manager.recent(4);
        assert!(manager.status(first).is_some());
        thread::sleep(Duration::from_millis(120));
        // Any manager activity sweeps; `recent` is what /metrics renders.
        let _ = manager.recent(4);
        assert!(
            manager.status(first).is_none(),
            "terminal record older than the TTL must be swept"
        );
        // Submission is a GC point too.
        let second = manager.submit(small_graph(9), spec()).unwrap();
        let view = manager.wait(second, Duration::from_secs(30)).unwrap();
        assert_eq!(view.status, JobStatus::Done);
        thread::sleep(Duration::from_millis(120));
        let third = manager.submit(small_graph(10), spec()).unwrap();
        assert!(manager.status(second).is_none(), "swept at submission");
        assert!(manager.status(third).is_some(), "fresh jobs never expire");
    }

    #[test]
    fn cached_results_expire_after_the_cache_ttl() {
        let manager = JobManager::new(ServiceConfig {
            workers: 1,
            cache_ttl: Duration::from_millis(50),
            ..ServiceConfig::default()
        });
        let graph = small_graph(8);
        let first = manager.submit(Arc::clone(&graph), spec()).unwrap();
        assert_eq!(
            manager.wait(first, Duration::from_secs(30)).unwrap().status,
            JobStatus::Done
        );
        // An immediate resubmission hits the still-fresh cache entry.
        let second = manager.submit(Arc::clone(&graph), spec()).unwrap();
        let view = manager.wait(second, Duration::from_secs(30)).unwrap();
        assert!(view.cached);
        assert_eq!(manager.counters().computed, 1);
        thread::sleep(Duration::from_millis(120));
        // Past the TTL the entry is swept: the identical job recomputes.
        let third = manager.submit(Arc::clone(&graph), spec()).unwrap();
        let view = manager.wait(third, Duration::from_secs(30)).unwrap();
        assert_eq!(view.status, JobStatus::Done);
        assert!(!view.cached, "the stale entry must not serve hits");
        let counters = manager.counters();
        assert_eq!(counters.computed, 2);
        assert!(counters.cache.expired >= 1, "{:?}", counters.cache);
    }

    #[test]
    fn job_key_separates_graphs_and_configs() {
        let g1 = small_graph(6);
        let g2 = small_graph(7);
        let base = spec();
        assert_eq!(job_key(&g1, &base), job_key(&g1, &base));
        assert_ne!(job_key(&g1, &base), job_key(&g2, &base));
        let other_alpha = JobSpec {
            request: ColorRequest {
                alpha: Some(4),
                ..base.request
            },
            ..base
        };
        assert_ne!(job_key(&g1, &base), job_key(&g1, &other_alpha));
        let other_policy = JobSpec {
            policy: ConflictPolicy::KeepMax,
            ..base
        };
        assert_ne!(job_key(&g1, &base), job_key(&g1, &other_policy));
        let parallel = JobSpec {
            request: ColorRequest {
                runtime: RuntimeConfig::parallel().with_threads(4),
                ..base.request
            },
            ..base
        };
        assert_ne!(job_key(&g1, &base), job_key(&g1, &parallel));
    }

    #[test]
    fn unknown_job_ids_are_none() {
        let manager = JobManager::new(ServiceConfig::default());
        assert!(manager.status(999).is_none());
        assert!(manager.wait(999, Duration::from_millis(10)).is_none());
    }
}
