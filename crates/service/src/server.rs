//! The HTTP front-end: routing, request parsing and JSON rendering.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use ampc_coloring::{Algorithm, ColorRequest, ColoringOutcome, RuntimeConfig, SparseColoring};
use ampc_coloring_bench::Table;
use ampc_model::ConflictPolicy;
use ampc_runtime::trace::LatencyHistogram;
use ampc_runtime::WorkerPool;
use sparse_graph::read_edge_list_bounded;

use crate::http::{read_head, HttpError, RequestHead, Response};
use crate::jobs::{trace_id, JobManager, JobSpec, JobView, ServiceConfig, SubmitError};
use crate::json::{array_u64, Object};

/// Per-read socket timeout for an in-flight request (the cumulative
/// HEAD/BODY deadlines bound whole transfers; this bounds one read).
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Per-endpoint request counters (surfaced by `/metrics`).
#[derive(Debug, Default)]
struct EndpointCounters {
    healthz: AtomicU64,
    metrics: AtomicU64,
    version: AtomicU64,
    color: AtomicU64,
    jobs: AtomicU64,
    not_found: AtomicU64,
    bad_requests: AtomicU64,
    /// `429` backpressure rejections — kept apart from `bad_requests` so a
    /// full queue is not mistaken for malformed traffic in `/metrics`.
    queue_rejected: AtomicU64,
    /// `408` request-read deadline expiries — also kept apart: a client
    /// being cut off mid-transfer is not malformed traffic either.
    timeouts: AtomicU64,
    /// TCP connections accepted.
    connections: AtomicU64,
    /// Requests served on an already-used (kept-alive) connection — the
    /// `/metrics` signal that HTTP/1.1 connection reuse is working.
    keepalive_reused: AtomicU64,
    /// `503` loads shed by the queue-depth circuit breaker — distinct from
    /// `queue_rejected`: a shed request was turned away *before* parsing
    /// while the breaker was open, a 429 raced a momentarily full queue.
    shed: AtomicU64,
}

struct ServerState {
    started: Instant,
    shutdown: AtomicBool,
    /// Graceful-shutdown drain: while set, new `POST /v1/color`
    /// submissions are answered `503 + Retry-After` (read-only endpoints
    /// keep serving) so queued and running jobs can finish.
    draining: AtomicBool,
    counters: EndpointCounters,
    /// Synchronous (`wait=1`) requests currently parking an acceptor.
    sync_waiters: AtomicUsize,
    /// Cap on concurrent synchronous waits: one acceptor is always kept
    /// free for non-waiting endpoints (`/healthz`, `/metrics`), so slow
    /// jobs cannot make the whole server unresponsive.
    max_sync_waiters: usize,
    /// Microseconds each request took from parsed head to rendered
    /// response (log-bucketed; includes body read and synchronous waits).
    request_micros: LatencyHistogram,
    /// Queue-depth circuit breaker. While open, `POST /v1/color` sheds
    /// load with `503 + Retry-After` before reading the body. Hysteresis
    /// (open at 7/8 capacity, close at 1/2) keeps it from flapping.
    breaker_open: AtomicBool,
}

/// One hysteresis step of the queue-depth circuit breaker: returns the
/// breaker's next state given its current one and the observed queue.
/// Opening at 7/8 of capacity (before the queue is hard-full) sheds load
/// while cheap 503s can still be served; staying open until the queue
/// drains to half capacity prevents open/close flapping right at the
/// threshold.
fn breaker_transition(open: bool, depth: usize, capacity: usize) -> bool {
    if open {
        depth * 2 > capacity
    } else {
        depth * 8 >= capacity * 7
    }
}

/// An RAII reservation of one synchronous-wait slot; dropping it releases
/// the slot.
struct WaitSlot<'a> {
    state: &'a ServerState,
}

impl<'a> WaitSlot<'a> {
    fn acquire(state: &'a ServerState) -> Option<Self> {
        let mut current = state.sync_waiters.load(Ordering::Relaxed);
        loop {
            if current >= state.max_sync_waiters {
                return None;
            }
            match state.sync_waiters.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(WaitSlot { state }),
                Err(observed) => current = observed,
            }
        }
    }
}

impl Drop for WaitSlot<'_> {
    fn drop(&mut self) {
        self.state.sync_waiters.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A bound (but not yet serving) coloring service.
pub struct Server {
    listener: TcpListener,
    manager: Arc<JobManager>,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds the service to `addr` (e.g. `127.0.0.1:0` for an ephemeral
    /// port) and spawns its persistent job workers.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind(addr: &str, config: ServiceConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            manager: Arc::new(JobManager::new(config)),
            state: Arc::new(ServerState {
                started: Instant::now(),
                shutdown: AtomicBool::new(false),
                draining: AtomicBool::new(false),
                counters: EndpointCounters::default(),
                sync_waiters: AtomicUsize::new(0),
                max_sync_waiters: config.acceptors.max(1).saturating_sub(1),
                request_micros: LatencyHistogram::new(),
                breaker_open: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (useful with an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts the fixed set of acceptor threads and returns a handle. No
    /// further threads are spawned per connection, per job or per round —
    /// the whole service runs on acceptors + job workers + the persistent
    /// runtime pool.
    ///
    /// # Errors
    ///
    /// Propagates listener clone failures.
    pub fn start(self) -> io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let acceptors = self.manager.config().acceptors.max(1);
        let manager = Arc::clone(&self.manager);
        let state = Arc::clone(&self.state);
        let mut handles = Vec::with_capacity(acceptors);
        for index in 0..acceptors {
            let listener = self.listener.try_clone()?;
            let manager = Arc::clone(&self.manager);
            let state = Arc::clone(&self.state);
            handles.push(
                thread::Builder::new()
                    .name(format!("ampc-http-{index}"))
                    .spawn(move || acceptor_loop(listener, manager, state))
                    .expect("spawning an acceptor failed"),
            );
        }
        Ok(ServerHandle {
            addr,
            manager,
            state,
            handles,
        })
    }
}

/// A running server; dropping the handle leaks the acceptors, call
/// [`ServerHandle::shutdown`] for an orderly stop.
pub struct ServerHandle {
    addr: SocketAddr,
    manager: Arc<JobManager>,
    state: Arc<ServerState>,
    handles: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The job manager behind the router.
    pub fn manager(&self) -> &Arc<JobManager> {
        &self.manager
    }

    /// Stops the acceptors and joins them.
    pub fn shutdown(mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        // Wake every acceptor blocked in accept().
        for _ in 0..self.handles.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }

    /// Enters drain mode: new `POST /v1/color` submissions are answered
    /// `503 + Retry-After` while every other endpoint (job polling,
    /// `/healthz`, `/metrics`) keeps serving, so in-flight work can finish
    /// and stragglers can still collect results.
    pub fn begin_drain(&self) {
        self.state.draining.store(true, Ordering::Release);
    }

    /// Waits (bounded by `timeout`) for the submission queue to empty and
    /// every running job to finish. Returns whether the service went
    /// fully idle within the deadline.
    pub fn drain(&self, timeout: Duration) -> bool {
        self.begin_drain();
        let deadline = Instant::now() + timeout;
        loop {
            let counters = self.manager.counters();
            if counters.queue_depth == 0 && counters.running == 0 {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(10));
        }
    }

    /// Graceful shutdown: [`ServerHandle::drain`] with a bounded deadline,
    /// then [`ServerHandle::shutdown`]. Joining the acceptors and dropping
    /// the job manager reaps every worker thread — and, with them, every
    /// `ampc-shard-worker` child process (each backend's drop SIGKILLs and
    /// waits on its children). Returns whether the drain completed in
    /// time; on `false`, still-queued jobs were abandoned at the deadline.
    pub fn shutdown_graceful(self, drain_timeout: Duration) -> bool {
        let drained = self.drain(drain_timeout);
        self.shutdown();
        drained
    }
}

fn acceptor_loop(listener: TcpListener, manager: Arc<JobManager>, state: Arc<ServerState>) {
    loop {
        let Ok((mut stream, _)) = listener.accept() else {
            if state.shutdown.load(Ordering::Acquire) {
                return;
            }
            // Persistent accept errors (e.g. fd exhaustion) must not
            // busy-spin the acceptor at 100% CPU.
            thread::sleep(Duration::from_millis(50));
            continue;
        };
        if state.shutdown.load(Ordering::Acquire) {
            return;
        }
        let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
        let _ = stream.set_write_timeout(Some(READ_TIMEOUT));
        state.counters.connections.fetch_add(1, Ordering::Relaxed);
        serve_connection(&mut stream, &manager, &state);
    }
}

/// Serves up to `max_requests_per_connection` HTTP/1.1 requests on one
/// connection. The connection is reused only when the request body was
/// fully consumed, the client did not ask for `Connection: close`, and the
/// per-connection request cap has not been reached; between requests an
/// idle client is cut off after [`crate::http::KEEPALIVE_IDLE`] so parked
/// acceptors are reclaimed quickly.
fn serve_connection(stream: &mut TcpStream, manager: &Arc<JobManager>, state: &ServerState) {
    let max_requests = manager.config().max_requests_per_connection.max(1);
    let mut carry = Vec::new();
    for served in 0..max_requests {
        let reused = served > 0;
        if reused {
            // The per-read socket timeout must not exceed the idle budget,
            // or a silent client would hold the acceptor for the full 30 s.
            let _ = stream.set_read_timeout(Some(crate::http::KEEPALIVE_IDLE));
        }
        let head_budget = if reused {
            crate::http::KEEPALIVE_IDLE
        } else {
            crate::http::HEAD_DEADLINE
        };
        let mut head = match read_head(
            stream,
            manager.config().max_body_bytes,
            Instant::now() + head_budget,
            std::mem::take(&mut carry),
            reused,
        ) {
            Ok(head) => head,
            Err(HttpError::Closed) => return,
            Err(error) => {
                let status = match &error {
                    HttpError::TooLarge(_) => 413,
                    HttpError::Timeout(_) => 408,
                    _ => 400,
                };
                if status == 408 {
                    state.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                } else {
                    state.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                }
                let _ = error_response(status, &error.to_string()).write_to(stream, false);
                return;
            }
        };
        if reused {
            state
                .counters
                .keepalive_reused
                .fetch_add(1, Ordering::Relaxed);
            let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
        }
        let handled = Instant::now();
        let response = handle_request(stream, &mut head, manager, state);
        state
            .request_micros
            .record(handled.elapsed().as_micros() as u64);
        // The socket is reusable only when it is positioned at the end of
        // this request's body (drain is idempotent; the handler usually
        // consumed the body already).
        let reusable = head.drain(stream);
        let keep_alive = reusable && !head.close && served + 1 < max_requests;
        if response.write_to(stream, keep_alive).is_err() || !keep_alive {
            return;
        }
        carry = head.into_pipelined();
    }
}

fn handle_request(
    stream: &mut TcpStream,
    head: &mut RequestHead,
    manager: &Arc<JobManager>,
    state: &ServerState,
) -> Response {
    match (head.method.as_str(), head.path.as_str()) {
        ("GET", "/healthz") => {
            state.counters.healthz.fetch_add(1, Ordering::Relaxed);
            // Three-state health: "ok" (fully healthy), "degraded"
            // (still serving, but the breaker is shedding writes or pool
            // workers have been restarted after panics — investigate),
            // "unhealthy" + 503 (submission queue saturated; orchestrators
            // should stop routing new work here).
            let counters = manager.counters();
            let faults = ampc_runtime::faults::counters();
            let restarts = WorkerPool::global().stats().worker_restarts;
            let breaker = state.breaker_open.load(Ordering::Relaxed);
            let saturated =
                counters.queue_capacity > 0 && counters.queue_depth >= counters.queue_capacity;
            let (code, label) = if saturated {
                (503, "unhealthy")
            } else if breaker || restarts > 0 {
                (200, "degraded")
            } else {
                (200, "ok")
            };
            Response::json(
                code,
                Object::new()
                    .str("status", label)
                    .u64("uptime_nanos", state.started.elapsed().as_nanos() as u64)
                    .bool("draining", state.draining.load(Ordering::Relaxed))
                    .bool("breaker_open", breaker)
                    .u64("worker_restarts", restarts)
                    .u64("requests_shed", state.counters.shed.load(Ordering::Relaxed))
                    .u64("jobs_retried", counters.jobs_retried)
                    .u64("rounds_retried", faults.rounds_retried)
                    .u64("workers_alive", ampc_runtime::faults::workers_alive())
                    .u64("worker_process_restarts", faults.worker_process_restarts)
                    .u64("rounds_replayed", faults.rounds_replayed)
                    .finish(),
            )
        }
        ("GET", "/v1/version") => {
            state.counters.version.fetch_add(1, Ordering::Relaxed);
            Response::json(
                200,
                Object::new()
                    .str("name", env!("CARGO_PKG_NAME"))
                    .raw("build_info", build_info_json())
                    .f64("uptime_seconds", state.started.elapsed().as_secs_f64())
                    .bool("perf_available", ampc_runtime::perf::available())
                    .finish(),
            )
        }
        ("GET", "/metrics") => {
            state.counters.metrics.fetch_add(1, Ordering::Relaxed);
            if head.query_param("format") == Some("prometheus") {
                let mut response = Response::text(200, metrics_prometheus(manager, state));
                response.content_type = "text/plain; version=0.0.4; charset=utf-8";
                response
            } else {
                Response::json(200, metrics_json(manager, state))
            }
        }
        ("POST", "/v1/color") => {
            state.counters.color.fetch_add(1, Ordering::Relaxed);
            match handle_color(stream, head, manager, state) {
                Ok(response) => response,
                Err(response) => {
                    match response.status {
                        429 => {
                            state
                                .counters
                                .queue_rejected
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        // Breaker sheds are operator signal (the server is
                        // protecting itself), not client error.
                        503 => {
                            state.counters.shed.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            state.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    *response
                }
            }
        }
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            state.counters.jobs.fetch_add(1, Ordering::Relaxed);
            let rest = &path["/v1/jobs/".len()..];
            let (id_text, action) = match rest.split_once('/') {
                None => (rest, None),
                Some((id_text, action)) => (id_text, Some(action)),
            };
            match id_text.parse::<u64>() {
                Ok(id) => match action {
                    None => match manager.status(id) {
                        Some(view) => Response::json(200, job_json(&view))
                            .with_header("X-Trace-Id", trace_id(id)),
                        None => error_response(404, &format!("unknown job id {id}")),
                    },
                    Some("trace") => handle_trace(manager, id),
                    Some(other) => {
                        error_response(404, &format!("no sub-resource `{other}` on jobs"))
                    }
                },
                Err(_) => {
                    state.counters.bad_requests.fetch_add(1, Ordering::Relaxed);
                    error_response(400, "job ids are unsigned integers")
                }
            }
        }
        _ => {
            state.counters.not_found.fetch_add(1, Ordering::Relaxed);
            error_response(404, &format!("no route for {} {}", head.method, head.path))
        }
    }
    // The caller (`serve_connection`) drains whatever part of the body the
    // route left unread before the response is written — both so the
    // client receives a 4xx instead of a TCP reset and so the connection
    // can be kept alive.
}

/// Reads and discards the (untouched) request body.
fn drain_body(stream: &mut TcpStream, head: &mut RequestHead) {
    let _ = head.drain(stream);
}

/// `GET /v1/jobs/{id}/trace`: the job's span timeline as Chrome
/// trace-event JSON (loadable in Perfetto / `chrome://tracing`). Only the
/// job that owned the computation carries a timeline — cached and
/// coalesced jobs answer 404, in-flight jobs 409.
fn handle_trace(manager: &Arc<JobManager>, id: u64) -> Response {
    match manager.status(id) {
        None => error_response(404, &format!("unknown job id {id}")),
        Some(view) => match &view.timeline {
            Some(timeline) => Response::json(200, timeline.chrome_trace_json())
                .with_header("X-Trace-Id", trace_id(id)),
            None if !view.status.is_terminal() => error_response(
                409,
                &format!(
                    "job {id} is still {}; its trace is available once it finishes",
                    view.status.label()
                ),
            ),
            None => error_response(
                404,
                &format!(
                    "job {id} has no trace (served from cache, coalesced onto another \
                     computation, or tracing is disabled)"
                ),
            ),
        },
    }
}

/// Parses the query string and body of `POST /v1/color`, submits the job
/// and renders the response. Errors come back as ready-to-send 4xx/5xx
/// responses.
fn handle_color(
    stream: &mut TcpStream,
    head: &mut RequestHead,
    manager: &Arc<JobManager>,
    state: &ServerState,
) -> Result<Response, Box<Response>> {
    // A draining server turns every new submission away before parsing:
    // the queue is being emptied for shutdown, and `Retry-After` points
    // stragglers at the replacement instance.
    if state.draining.load(Ordering::Acquire) {
        state.counters.shed.fetch_add(1, Ordering::Relaxed);
        drain_body(stream, head);
        return Err(Box::new(
            error_response(503, "shutting down: submissions are draining")
                .with_header("Retry-After", "1"),
        ));
    }
    // The circuit breaker is consulted (and stepped) before any parsing:
    // while open, the cheapest possible 503 turns new work away so the
    // workers can drain the backlog. `Retry-After` tells well-behaved
    // clients when shedding is expected to stop.
    {
        let counters = manager.counters();
        let open = state.breaker_open.load(Ordering::Relaxed);
        let next = breaker_transition(open, counters.queue_depth, counters.queue_capacity.max(1));
        if next != open {
            state.breaker_open.store(next, Ordering::Relaxed);
        }
        if next {
            drain_body(stream, head);
            return Err(Box::new(
                error_response(
                    503,
                    &format!(
                        "shedding load: submission queue at {}/{} (breaker open)",
                        counters.queue_depth, counters.queue_capacity
                    ),
                )
                .with_header("Retry-After", "1"),
            ));
        }
    }
    // Every early error drains the (partially) unread body first, so the
    // client receives the 4xx instead of a connection reset.
    let spec = match parse_spec(head) {
        Ok(spec) => spec,
        Err(response) => {
            drain_body(stream, head);
            return Err(Box::new(response));
        }
    };
    // The per-request node cap scales with the body the client actually
    // sent: a 30-byte request must not be able to demand the server-wide
    // maximum allocation via min_nodes or a huge node id.
    let max_nodes = node_cap_for_body(head.content_length, manager.config().max_graph_nodes);
    let min_nodes = match parse_optional(head, "min_nodes") {
        Ok(value) => value.unwrap_or(0),
        Err(response) => {
            drain_body(stream, head);
            return Err(response);
        }
    };
    if min_nodes > max_nodes {
        drain_body(stream, head);
        return Err(Box::new(error_response(
            400,
            &format!(
                "min_nodes {min_nodes} exceeds this request's limit of {max_nodes} nodes \
                 (proportional to the {}-byte body)",
                head.content_length
            ),
        )));
    }
    // Parse wait/timeout up front: a malformed value must fail before the
    // job is accepted, not after the client has already paid for it.
    // Clamped: a synchronous wait parks an acceptor thread, so the client
    // must not be able to hold it near (or past) typical health-probe
    // windows.
    const MAX_WAIT_MS: usize = 30_000;
    let wait = matches!(head.query_param("wait"), Some("1") | Some("true"));
    let timeout_ms = match parse_optional(head, "timeout_ms") {
        Ok(value) => value.unwrap_or(60_000).min(MAX_WAIT_MS),
        Err(response) => {
            drain_body(stream, head);
            return Err(response);
        }
    };
    if head.content_length == 0 {
        return Err(Box::new(error_response(
            400,
            "empty body; POST a whitespace-separated edge list",
        )));
    }
    // Bounded: a node id in the body must not be able to dictate an
    // arbitrarily large adjacency allocation.
    let graph = {
        let mut body = head.body_reader(stream);
        match read_edge_list_bounded(&mut body, min_nodes, max_nodes) {
            Ok(graph) => graph,
            Err(error) => {
                let _ = io::copy(&mut body, &mut io::sink());
                return Err(Box::new(error_response(400, &error.to_string())));
            }
        }
    };

    let job = match manager.submit(Arc::new(graph), spec) {
        Ok(id) => id,
        Err(error @ SubmitError::QueueFull { .. }) => {
            return Err(Box::new(error_response(429, &error.to_string())));
        }
    };

    if wait {
        // A synchronous wait parks this acceptor thread; WaitSlot caps how
        // many may park at once so at least one acceptor stays free for
        // /healthz and /metrics. Past the cap the request degrades to the
        // async 202 flow below instead of queueing up more parked threads.
        if let Some(_slot) = WaitSlot::acquire(state) {
            // The record can already be gone if the retention cap evicted
            // it (eviction only touches terminal jobs, so it did finish).
            let response = match manager.wait(job, Duration::from_millis(timeout_ms as u64)) {
                // A wait that elapses before the job finishes answers 202
                // like the slot-exhausted path, so every non-terminal
                // outcome uniformly tells the client to poll (a 200 with
                // status "running" would read as a finished-but-wrong
                // result to naive clients).
                Some(view) if !view.status.is_terminal() => Response::json(
                    202,
                    Object::new()
                        .u64("job", job)
                        .str("status", view.status.label())
                        .str(
                            "note",
                            "wait elapsed before the job finished; poll GET /v1/jobs/{id}",
                        )
                        .finish(),
                ),
                Some(view) => Response::json(200, job_json(&view)),
                None => Response::json(
                    200,
                    Object::new()
                        .u64("job", job)
                        .str("status", "expired")
                        .str(
                            "error",
                            "job finished but its record was evicted (retention cap or TTL)",
                        )
                        .finish(),
                ),
            };
            return Ok(response
                .with_header("X-Job-Id", job.to_string())
                .with_header("X-Trace-Id", trace_id(job)));
        }
    }
    let view = manager.status(job);
    if wait {
        // No slot was free, but a job that is already terminal (e.g. a
        // cache hit resolved at submission) needs no wait at all — serve
        // it outright instead of a contradictory 202 "done".
        if let Some(view) = view.as_ref().filter(|view| view.status.is_terminal()) {
            return Ok(Response::json(200, job_json(view))
                .with_header("X-Job-Id", job.to_string())
                .with_header("X-Trace-Id", trace_id(job)));
        }
    }
    let status_label = view.map_or("expired", |view| view.status.label());
    let mut accepted = Object::new().u64("job", job).str("status", status_label);
    if wait {
        accepted = accepted.str(
            "note",
            "all synchronous wait slots are busy; poll GET /v1/jobs/{id}",
        );
    }
    Ok(Response::json(202, accepted.finish())
        .with_header("X-Job-Id", job.to_string())
        .with_header("X-Trace-Id", trace_id(job)))
}

/// The node cap for a request with a `body_bytes`-sized edge list: the
/// configured server-wide maximum, tightened to a multiple of the body
/// size (an edge line is ≥ 4 bytes and introduces ≤ 2 nodes, so 4× the
/// body is generous even for sparse id spaces), with a small floor so
/// trivial test bodies still work.
fn node_cap_for_body(body_bytes: usize, max_graph_nodes: usize) -> usize {
    max_graph_nodes.min(body_bytes.saturating_mul(4).max(4096))
}

/// Builds the validated [`JobSpec`] from the query string.
fn parse_spec(head: &RequestHead) -> Result<JobSpec, Response> {
    let mut request = ColorRequest::default();
    if let Some(raw) = head.query_param("algorithm") {
        request.algorithm = parse_algorithm(raw)
            .ok_or_else(|| error_response(400, &format!("unknown algorithm `{raw}`")))?;
    }
    if let Some(raw) = head.query_param("alpha") {
        let alpha = raw
            .parse::<usize>()
            .map_err(|_| error_response(400, &format!("bad alpha `{raw}`")))?;
        request.alpha = Some(alpha);
    }
    for (name, slot) in [
        ("epsilon", &mut request.epsilon as &mut f64),
        ("delta", &mut request.delta),
    ] {
        if let Some(raw) = head.query_param(name) {
            *slot = raw
                .parse::<f64>()
                .map_err(|_| error_response(400, &format!("bad {name} `{raw}`")))?;
        }
    }
    if let Some(raw) = head.query_param("max_rounds") {
        request.max_partition_rounds = raw
            .parse::<usize>()
            .map_err(|_| error_response(400, &format!("bad max_rounds `{raw}`")))?;
    }

    // All three values size allocations (worker chunks, shard hash maps,
    // child processes), so an untrusted client must not be able to pick
    // them arbitrarily large.
    const MAX_THREADS: usize = 256;
    const MAX_SHARDS: usize = 4096;
    const MAX_WORKERS: usize = 32;
    let threads = parse_optional_response(head, "threads")?;
    let shards = parse_optional_response(head, "shards")?;
    let workers = parse_optional_response(head, "workers")?;
    if let Some(workers) = workers {
        if workers == 0 || workers > MAX_WORKERS {
            return Err(error_response(
                400,
                &format!("workers must lie in 1..={MAX_WORKERS}"),
            ));
        }
    }
    if let Some(threads) = threads {
        if threads == 0 || threads > MAX_THREADS {
            return Err(error_response(
                400,
                &format!("threads must lie in 1..={MAX_THREADS}"),
            ));
        }
    }
    // shards = 0 is the auto-tuning sentinel (initial count derived from
    // the thread count, grown from observed imbalance) and is allowed;
    // the auto-tuner's own ceiling is far below MAX_SHARDS.
    if let Some(shards) = shards {
        if shards > MAX_SHARDS {
            return Err(error_response(
                400,
                &format!("shards must lie in 0..={MAX_SHARDS} (0 = auto-tuned)"),
            ));
        }
    }
    let runtime_kind = head.query_param("runtime").unwrap_or({
        if workers.is_some() {
            "process"
        } else if threads.is_some() || shards.is_some() {
            "parallel"
        } else {
            "sequential"
        }
    });
    request.runtime = match runtime_kind {
        "sequential" => {
            if threads.is_some() || shards.is_some() || workers.is_some() {
                return Err(error_response(
                    400,
                    "threads/shards/workers only apply to runtime=parallel|process",
                ));
            }
            RuntimeConfig::Sequential
        }
        "parallel" => {
            if workers.is_some() {
                return Err(error_response(
                    400,
                    "workers only applies to runtime=process",
                ));
            }
            let mut runtime = RuntimeConfig::parallel();
            if let Some(threads) = threads {
                runtime = runtime.with_threads(threads);
            }
            if let Some(shards) = shards {
                runtime = runtime.with_shards(shards);
            }
            runtime
        }
        "process" => {
            if threads.is_some() || shards.is_some() {
                return Err(error_response(
                    400,
                    "threads/shards only apply to runtime=parallel",
                ));
            }
            let mut runtime = RuntimeConfig::process();
            if let Some(workers) = workers {
                runtime = runtime.with_workers(workers);
            }
            runtime
        }
        other => {
            return Err(error_response(
                400,
                &format!("unknown runtime `{other}` (sequential|parallel|process)"),
            ));
        }
    };

    let policy = match head.query_param("policy") {
        None => ConflictPolicy::KeepMin,
        Some(raw) => {
            let policy = parse_policy(raw)
                .ok_or_else(|| error_response(400, &format!("unknown policy `{raw}`")))?;
            if policy != ConflictPolicy::KeepMin {
                return Err(error_response(
                    400,
                    &format!(
                        "policy `{raw}` is not usable for coloring jobs: the pipeline's \
                         rounds require the paper's min-merge (keep-min, Lemma 4.10)"
                    ),
                ));
            }
            policy
        }
    };

    // Reject out-of-domain numerics (NaN/negative epsilon, delta outside
    // (0, 1], alpha = 0, …) at submission time: a job that can only fail
    // must not be queued, and — crucially — a NaN spec must never reach
    // the result cache.
    SparseColoring::from_request(&request)
        .map_err(|error| error_response(400, &error.to_string()))?;

    Ok(JobSpec { request, policy })
}

fn parse_optional(head: &RequestHead, name: &str) -> Result<Option<usize>, Box<Response>> {
    parse_optional_response(head, name).map_err(Box::new)
}

fn parse_optional_response(head: &RequestHead, name: &str) -> Result<Option<usize>, Response> {
    match head.query_param(name) {
        None => Ok(None),
        Some(raw) => raw
            .parse::<usize>()
            .map(Some)
            .map_err(|_| error_response(400, &format!("bad {name} `{raw}`"))),
    }
}

fn error_response(status: u16, message: &str) -> Response {
    Response::json(
        status,
        Object::new()
            .str("error", message)
            .u64("status", status as u64)
            .finish(),
    )
}

/// Wire labels of [`Algorithm`] variants.
fn parse_algorithm(raw: &str) -> Option<Algorithm> {
    Some(match raw {
        "auto" => Algorithm::Auto,
        "alpha-power" => Algorithm::AlphaPower,
        "alpha-squared" => Algorithm::AlphaSquared,
        "two-alpha-plus-one" => Algorithm::TwoAlphaPlusOne,
        "large-arboricity" => Algorithm::LargeArboricity,
        _ => return None,
    })
}

fn algorithm_label(algorithm: Algorithm) -> &'static str {
    match algorithm {
        Algorithm::Auto => "auto",
        Algorithm::AlphaPower => "alpha-power",
        Algorithm::AlphaSquared => "alpha-squared",
        Algorithm::TwoAlphaPlusOne => "two-alpha-plus-one",
        Algorithm::LargeArboricity => "large-arboricity",
    }
}

/// Wire labels of [`ConflictPolicy`] variants.
fn parse_policy(raw: &str) -> Option<ConflictPolicy> {
    Some(match raw {
        "keep-min" => ConflictPolicy::KeepMin,
        "keep-max" => ConflictPolicy::KeepMax,
        "keep-first" => ConflictPolicy::KeepFirst,
        "error" => ConflictPolicy::Error,
        _ => return None,
    })
}

fn policy_label(policy: ConflictPolicy) -> &'static str {
    match policy {
        ConflictPolicy::KeepMin => "keep-min",
        ConflictPolicy::KeepMax => "keep-max",
        ConflictPolicy::KeepFirst => "keep-first",
        ConflictPolicy::Error => "error",
    }
}

/// Renders a job snapshot (status, config echo, result, metrics table).
fn job_json(view: &JobView) -> String {
    let mut object = Object::new()
        .u64("job", view.id)
        .str("status", view.status.label())
        .str("trace_id", &trace_id(view.id))
        .bool("trace_available", view.timeline.is_some())
        .bool("cached", view.cached)
        .raw(
            "graph",
            Object::new()
                .usize("nodes", view.graph_nodes)
                .usize("edges", view.graph_edges)
                .finish(),
        )
        .raw("config", config_json(&view.spec))
        .u64("age_nanos", view.age_nanos);
    if let Some(result) = &view.result {
        object = object.raw("result", result_json(result, view.wall_nanos));
    }
    if let Some(error) = &view.error {
        object = object.str("error", error);
    }
    object.finish()
}

fn config_json(spec: &JobSpec) -> String {
    let request = &spec.request;
    let mut object = Object::new().str("algorithm", algorithm_label(request.algorithm));
    object = match request.alpha {
        Some(alpha) => object.usize("alpha", alpha),
        None => object.raw("alpha", "null"),
    };
    object
        .f64("epsilon", request.epsilon)
        .f64("delta", request.delta)
        .usize("max_partition_rounds", request.max_partition_rounds)
        .str("runtime", &request.runtime.label())
        .str("policy", policy_label(spec.policy))
        .finish()
}

fn result_json(outcome: &ColoringOutcome, wall_nanos: u64) -> String {
    Object::new()
        .str("algorithm", &outcome.algorithm)
        .usize("colors_used", outcome.colors_used)
        .usize("alpha", outcome.alpha)
        .usize("beta", outcome.beta)
        .usize("partition_rounds", outcome.partition_rounds)
        .usize("partition_size", outcome.partition_size)
        .usize("coloring_rounds", outcome.coloring_rounds)
        .usize("total_rounds", outcome.total_rounds)
        .u64("wall_clock_nanos", wall_nanos)
        .raw(
            "coloring",
            array_u64(outcome.coloring.colors().iter().map(|&c| c as u64)),
        )
        .raw("runtime_stats", runtime_stats_table(outcome).to_json())
        .finish()
}

/// Short git hash of the build, injected by the crate's build script (or
/// an `AMPC_GIT_HASH` override at compile time); "unknown" for builds
/// without either.
fn build_git_hash() -> &'static str {
    option_env!("AMPC_GIT_HASH").unwrap_or("unknown")
}

/// The rustc that produced this build, via the build script (or an
/// `AMPC_RUSTC_VERSION` override).
fn build_rustc() -> &'static str {
    option_env!("AMPC_RUSTC_VERSION").unwrap_or("unknown")
}

/// The `build_info` block shared by `GET /v1/version` and `/metrics`: a
/// scraper can tell exactly which build it is talking to.
fn build_info_json() -> String {
    Object::new()
        .str("version", env!("CARGO_PKG_VERSION"))
        .str("git_hash", build_git_hash())
        .str("rustc", build_rustc())
        .finish()
}

/// Formats an optional ratio with two decimals, "-" when the underlying
/// counters were not sampled (perf unavailable).
fn ratio_cell(value: Option<f64>) -> String {
    value.map_or_else(|| "-".to_string(), |v| format!("{v:.2}"))
}

/// Formats an optional rate as a percentage with one decimal, "-" when
/// not sampled.
fn percent_cell(value: Option<f64>) -> String {
    value.map_or_else(|| "-".to_string(), |v| format!("{:.1}", v * 100.0))
}

/// The per-round runtime measurements rendered through the workspace's
/// no-serde [`Table`] serializer.
fn runtime_stats_table(outcome: &ColoringOutcome) -> Table {
    let mut table = Table::new(
        "runtime",
        "per-round runtime stats",
        "wall clock, shard loads, pool reuse and hardware counters of every \
         recorded AMPC round; the coloring-phase row's wall_clock_us is real \
         elapsed time (the max over concurrently simulated layers) while \
         intra_wall_us sums worker occupancy across those layers, so \
         occupancy can legitimately exceed wall clock on multi-threaded \
         runs; cycles/instructions/ipc/cache_miss_pct come from \
         perf_event_open sampling and read '-'/0 when unavailable",
        &[
            "round",
            "wall_clock_us",
            "conflict_merges",
            "shard_reads",
            "shard_writes",
            "pool_tasks",
            "pool_idle_us",
            "pool_steals",
            "pool_overflows",
            "auto_shards",
            "intra_tasks",
            "intra_wall_us",
            "scratch_reuses",
            "scratch_allocs",
            "cycles",
            "instructions",
            "ipc",
            "cache_miss_pct",
            "branch_misses",
        ],
    );
    for (round, stats) in outcome.metrics.runtime_stats().iter().enumerate() {
        table.push_row(vec![
            round.to_string(),
            (stats.wall_clock_nanos / 1_000).to_string(),
            stats.conflict_merges.to_string(),
            stats.shard_reads.iter().sum::<u64>().to_string(),
            stats.shard_writes.iter().sum::<u64>().to_string(),
            stats.pool_tasks_per_worker.iter().sum::<u64>().to_string(),
            (stats.pool_idle_nanos / 1_000).to_string(),
            stats.pool_steals.to_string(),
            stats.pool_overflows.to_string(),
            stats.auto_shards.to_string(),
            stats.intra_tasks.to_string(),
            (stats.intra_wall_nanos / 1_000).to_string(),
            stats.scratch_reuses.to_string(),
            stats.scratch_allocs.to_string(),
            stats.cycles.to_string(),
            stats.instructions.to_string(),
            ratio_cell(stats.ipc()),
            percent_cell(stats.cache_miss_rate()),
            stats.branch_misses.to_string(),
        ]);
    }
    table
}

/// The `/metrics` document: endpoint counters, queue depth, job and cache
/// counters, persistent-pool reuse stats and a recent-jobs table.
fn metrics_json(manager: &Arc<JobManager>, state: &ServerState) -> String {
    let counters = manager.counters();
    let pool = WorkerPool::global();
    let pool_stats = pool.stats();

    let mut recent = Table::new(
        "recent-jobs",
        "recently submitted jobs",
        "per-job status, rounds and compute wall clock",
        &[
            "job",
            "status",
            "cached",
            "nodes",
            "edges",
            "colors",
            "total_rounds",
            "wall_clock_us",
        ],
    );
    for view in manager.recent(16) {
        let (colors, rounds) = view
            .result
            .as_ref()
            .map_or((0, 0), |r| (r.colors_used, r.total_rounds));
        recent.push_row(vec![
            view.id.to_string(),
            view.status.label().to_string(),
            view.cached.to_string(),
            view.graph_nodes.to_string(),
            view.graph_edges.to_string(),
            colors.to_string(),
            rounds.to_string(),
            (view.wall_nanos / 1_000).to_string(),
        ]);
    }

    let perf = counters.perf;
    Object::new()
        .u64("uptime_nanos", state.started.elapsed().as_nanos() as u64)
        .f64("uptime_seconds", state.started.elapsed().as_secs_f64())
        .raw("build_info", build_info_json())
        .raw(
            "perf",
            Object::new()
                .bool("available", ampc_runtime::perf::available())
                .u64("cycles", perf.cycles)
                .u64("instructions", perf.instructions)
                .u64("cache_references", perf.cache_references)
                .u64("cache_misses", perf.cache_misses)
                .u64("branch_misses", perf.branch_misses)
                .u64("sampled_jobs", counters.perf_sampled_jobs)
                .finish(),
        )
        .raw(
            "endpoints",
            Object::new()
                .u64("healthz", state.counters.healthz.load(Ordering::Relaxed))
                .u64("metrics", state.counters.metrics.load(Ordering::Relaxed))
                .u64("version", state.counters.version.load(Ordering::Relaxed))
                .u64("color", state.counters.color.load(Ordering::Relaxed))
                .u64("jobs", state.counters.jobs.load(Ordering::Relaxed))
                .u64(
                    "not_found",
                    state.counters.not_found.load(Ordering::Relaxed),
                )
                .u64(
                    "bad_requests",
                    state.counters.bad_requests.load(Ordering::Relaxed),
                )
                .u64(
                    "queue_rejected",
                    state.counters.queue_rejected.load(Ordering::Relaxed),
                )
                .u64("timeouts", state.counters.timeouts.load(Ordering::Relaxed))
                .finish(),
        )
        .raw(
            "http",
            Object::new()
                .u64(
                    "connections",
                    state.counters.connections.load(Ordering::Relaxed),
                )
                .u64(
                    "keepalive_reused",
                    state.counters.keepalive_reused.load(Ordering::Relaxed),
                )
                .usize(
                    "max_requests_per_connection",
                    manager.config().max_requests_per_connection,
                )
                .finish(),
        )
        .raw(
            "queue",
            Object::new()
                .usize("depth", counters.queue_depth)
                .usize("capacity", counters.queue_capacity)
                .finish(),
        )
        .raw(
            "waits",
            Object::new()
                .usize("in_flight", state.sync_waiters.load(Ordering::Relaxed))
                .usize("max_concurrent", state.max_sync_waiters)
                .finish(),
        )
        .raw(
            "jobs",
            Object::new()
                .u64("submitted", counters.submitted)
                .u64("completed", counters.completed)
                .u64("failed", counters.failed)
                .u64("computed", counters.computed)
                .usize("running", counters.running)
                .finish(),
        )
        .raw(
            "cache",
            Object::new()
                .u64("hits", counters.cache.hits)
                .u64("misses", counters.cache.misses)
                .u64("coalesced", counters.cache.coalesced)
                .u64("entries", counters.cache.entries)
                .u64("evicted", counters.cache.evicted)
                .u64("expired", counters.cache.expired)
                .finish(),
        )
        .raw(
            "pool",
            Object::new()
                .usize("workers", pool.num_workers())
                .raw(
                    "tasks_per_worker",
                    array_u64(pool_stats.tasks_per_worker.iter().copied()),
                )
                .raw(
                    "idle_nanos_per_worker",
                    array_u64(pool_stats.idle_nanos_per_worker.iter().copied()),
                )
                .u64("helper_tasks", pool_stats.helper_tasks)
                .u64("steals", pool_stats.steals)
                .u64("overflows", pool_stats.overflows)
                .finish(),
        )
        .raw("scratch", {
            // Process-wide scratch-buffer reuse across every coloring
            // context: in steady state `reuses` dwarfs `allocs` (the
            // allocation-discipline contract the intra bench gates on).
            let (reuses, allocs) = ampc_runtime::scratch_totals();
            Object::new()
                .u64("reuses", reuses)
                .u64("allocs", allocs)
                .finish()
        })
        .raw("faults", {
            // The resilience plane: how much self-protection and recovery
            // machinery has actually fired. The injected_* counters stay 0
            // unless a deterministic fault plan (AMPC_FAULTS) is active.
            let faults = ampc_runtime::faults::counters();
            Object::new()
                .bool("breaker_open", state.breaker_open.load(Ordering::Relaxed))
                .u64("requests_shed", state.counters.shed.load(Ordering::Relaxed))
                .u64("worker_restarts", pool_stats.worker_restarts)
                .u64("jobs_retried", counters.jobs_retried)
                .u64("rounds_retried", faults.rounds_retried)
                .u64("deadline_trips", faults.deadline_trips)
                .u64("injected_panics", faults.injected_panics)
                .u64("injected_stalls", faults.injected_stalls)
                .u64("injected_merge_failures", faults.injected_merge_failures)
                .u64("injected_allocs", faults.injected_allocs)
                .u64("worker_poisons", faults.worker_poisons)
                .u64("worker_kills", faults.worker_kills)
                .u64("workers_alive", ampc_runtime::faults::workers_alive())
                .u64("worker_process_restarts", faults.worker_process_restarts)
                .u64("rounds_replayed", faults.rounds_replayed)
                .finish()
        })
        .raw(
            "latency",
            Object::new()
                .raw("request_micros", histogram_json(&state.request_micros))
                .raw(
                    "queue_wait_micros",
                    histogram_json(manager.queue_wait_micros()),
                )
                .raw(
                    "execution_micros",
                    histogram_json(manager.execution_micros()),
                )
                .finish(),
        )
        .raw("recent_jobs", recent.to_json())
        .finish()
}

/// Summary of one log-bucketed latency histogram for the JSON metrics
/// document: count, mean, quantiles and the non-empty buckets.
fn histogram_json(histogram: &LatencyHistogram) -> String {
    let buckets = histogram.nonzero_buckets();
    Object::new()
        .u64("count", histogram.count())
        .u64("sum", histogram.sum())
        .f64("mean", histogram.mean())
        .u64("p50", histogram.quantile(0.5))
        .u64("p90", histogram.quantile(0.9))
        .u64("p99", histogram.quantile(0.99))
        .u64("max", histogram.max())
        .raw("bucket_le", array_u64(buckets.iter().map(|&(le, _)| le)))
        .raw(
            "bucket_count",
            array_u64(buckets.iter().map(|&(_, count)| count)),
        )
        .finish()
}

/// The Prometheus text-exposition rendering of `/metrics`
/// (`?format=prometheus`): every counter/gauge family with `# HELP` and
/// `# TYPE` lines, plus the three latency histograms in the native
/// `_bucket{le=…}` / `_sum` / `_count` shape.
fn metrics_prometheus(manager: &Arc<JobManager>, state: &ServerState) -> String {
    let counters = manager.counters();
    let pool = WorkerPool::global();
    let pool_stats = pool.stats();
    let (scratch_reuses, scratch_allocs) = ampc_runtime::scratch_totals();
    let mut out = String::with_capacity(4096);

    let gauge = |out: &mut String, name: &str, help: &str, value: f64| {
        push_family(out, name, help, "gauge");
        push_sample(out, name, &[], value);
    };
    let counter = |out: &mut String, name: &str, help: &str, value: u64| {
        push_family(out, name, help, "counter");
        push_sample(out, name, &[], value as f64);
    };

    gauge(
        &mut out,
        "ampc_uptime_seconds",
        "Seconds since the server started.",
        state.started.elapsed().as_secs_f64(),
    );

    // The conventional build-identity pseudo-gauge: constant 1, with the
    // identifying facts carried as labels.
    push_family(
        &mut out,
        "ampc_build_info",
        "Build identity of the serving binary (constant 1).",
        "gauge",
    );
    push_sample(
        &mut out,
        "ampc_build_info",
        &[
            ("version", env!("CARGO_PKG_VERSION")),
            ("git_hash", build_git_hash()),
            ("rustc", build_rustc()),
        ],
        1.0,
    );

    push_family(
        &mut out,
        "ampc_http_requests_total",
        "HTTP requests served, by endpoint outcome.",
        "counter",
    );
    for (endpoint, value) in [
        ("healthz", state.counters.healthz.load(Ordering::Relaxed)),
        ("metrics", state.counters.metrics.load(Ordering::Relaxed)),
        ("version", state.counters.version.load(Ordering::Relaxed)),
        ("color", state.counters.color.load(Ordering::Relaxed)),
        ("jobs", state.counters.jobs.load(Ordering::Relaxed)),
        (
            "not_found",
            state.counters.not_found.load(Ordering::Relaxed),
        ),
        (
            "bad_request",
            state.counters.bad_requests.load(Ordering::Relaxed),
        ),
        (
            "queue_rejected",
            state.counters.queue_rejected.load(Ordering::Relaxed),
        ),
        ("timeout", state.counters.timeouts.load(Ordering::Relaxed)),
    ] {
        push_sample(
            &mut out,
            "ampc_http_requests_total",
            &[("endpoint", endpoint)],
            value as f64,
        );
    }

    counter(
        &mut out,
        "ampc_http_connections_total",
        "TCP connections accepted.",
        state.counters.connections.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "ampc_http_keepalive_reused_total",
        "Requests served on an already-used (kept-alive) connection.",
        state.counters.keepalive_reused.load(Ordering::Relaxed),
    );

    counter(
        &mut out,
        "ampc_jobs_submitted_total",
        "Jobs accepted (including cache hits and coalesced jobs).",
        counters.submitted,
    );
    counter(
        &mut out,
        "ampc_jobs_completed_total",
        "Jobs finished successfully.",
        counters.completed,
    );
    counter(
        &mut out,
        "ampc_jobs_failed_total",
        "Jobs finished with an error.",
        counters.failed,
    );
    counter(
        &mut out,
        "ampc_jobs_computed_total",
        "Colorings actually computed to completion (successful cache misses).",
        counters.computed,
    );
    gauge(
        &mut out,
        "ampc_jobs_running",
        "Jobs currently computing.",
        counters.running as f64,
    );
    gauge(
        &mut out,
        "ampc_queue_depth",
        "Jobs currently waiting in the submission queue.",
        counters.queue_depth as f64,
    );
    gauge(
        &mut out,
        "ampc_queue_capacity",
        "Configured capacity of the bounded submission queue.",
        counters.queue_capacity as f64,
    );

    counter(
        &mut out,
        "ampc_cache_hits_total",
        "Submissions served from the ready-result cache.",
        counters.cache.hits,
    );
    counter(
        &mut out,
        "ampc_cache_misses_total",
        "Submissions that claimed a fresh computation.",
        counters.cache.misses,
    );
    counter(
        &mut out,
        "ampc_cache_coalesced_total",
        "Submissions coalesced onto an identical in-flight computation.",
        counters.cache.coalesced,
    );
    counter(
        &mut out,
        "ampc_cache_evicted_total",
        "Cache entries evicted by the capacity or node-budget caps.",
        counters.cache.evicted,
    );
    counter(
        &mut out,
        "ampc_cache_expired_total",
        "Cache entries swept by the TTL.",
        counters.cache.expired,
    );
    gauge(
        &mut out,
        "ampc_cache_entries",
        "Ready results currently cached.",
        counters.cache.entries as f64,
    );

    gauge(
        &mut out,
        "ampc_pool_workers",
        "Persistent runtime-pool worker threads.",
        pool.num_workers() as f64,
    );
    counter(
        &mut out,
        "ampc_pool_steals_total",
        "Tasks stolen between runtime-pool workers.",
        pool_stats.steals,
    );
    counter(
        &mut out,
        "ampc_pool_overflows_total",
        "Tasks that overflowed a worker's bounded deque.",
        pool_stats.overflows,
    );
    counter(
        &mut out,
        "ampc_pool_tasks_total",
        "Tasks executed by runtime-pool worker threads.",
        pool_stats.tasks_per_worker.iter().sum(),
    );
    counter(
        &mut out,
        "ampc_pool_helper_tasks_total",
        "Tasks executed inline by submitting threads while helping.",
        pool_stats.helper_tasks,
    );
    counter(
        &mut out,
        "ampc_pool_idle_nanoseconds_total",
        "Cumulative nanoseconds runtime-pool workers spent parked idle.",
        pool_stats.idle_nanos_per_worker.iter().sum(),
    );

    gauge(
        &mut out,
        "ampc_sync_waiters",
        "Synchronous color requests currently parked waiting for a result.",
        state.sync_waiters.load(Ordering::Relaxed) as f64,
    );
    gauge(
        &mut out,
        "ampc_sync_waiters_max",
        "Configured cap on concurrent synchronous waiters.",
        state.max_sync_waiters as f64,
    );

    // Hardware perf counters aggregated over computed jobs. `available`
    // reports whether perf_event_open produced live counters; when it is
    // 0 every total below stays 0 (graceful degradation, not an error).
    gauge(
        &mut out,
        "ampc_perf_available",
        "1 when hardware perf counters are live, 0 when sampling is disabled or unsupported.",
        if ampc_runtime::perf::available() {
            1.0
        } else {
            0.0
        },
    );
    counter(
        &mut out,
        "ampc_perf_sampled_jobs_total",
        "Computed jobs whose rounds contributed hardware counter samples.",
        counters.perf_sampled_jobs,
    );
    counter(
        &mut out,
        "ampc_perf_cycles_total",
        "CPU cycles attributed to computed coloring rounds.",
        counters.perf.cycles,
    );
    counter(
        &mut out,
        "ampc_perf_instructions_total",
        "Instructions retired in computed coloring rounds.",
        counters.perf.instructions,
    );
    counter(
        &mut out,
        "ampc_perf_cache_references_total",
        "Cache references in computed coloring rounds.",
        counters.perf.cache_references,
    );
    counter(
        &mut out,
        "ampc_perf_cache_misses_total",
        "Cache misses in computed coloring rounds.",
        counters.perf.cache_misses,
    );
    counter(
        &mut out,
        "ampc_perf_branch_misses_total",
        "Branch mispredictions in computed coloring rounds.",
        counters.perf.branch_misses,
    );

    counter(
        &mut out,
        "ampc_scratch_reuses_total",
        "Scratch buffers reused from a pool instead of allocated.",
        scratch_reuses,
    );
    counter(
        &mut out,
        "ampc_scratch_allocs_total",
        "Scratch buffers allocated fresh.",
        scratch_allocs,
    );

    // The resilience plane: breaker state, load shed, and every recovery
    // mechanism that has fired (worker respawns, job/round retries,
    // deterministically injected faults).
    let faults = ampc_runtime::faults::counters();
    gauge(
        &mut out,
        "ampc_breaker_open",
        "1 while the queue-depth circuit breaker is shedding color requests.",
        if state.breaker_open.load(Ordering::Relaxed) {
            1.0
        } else {
            0.0
        },
    );
    counter(
        &mut out,
        "ampc_requests_shed_total",
        "Color requests shed with 503 while the circuit breaker was open.",
        state.counters.shed.load(Ordering::Relaxed),
    );
    counter(
        &mut out,
        "ampc_pool_worker_restarts_total",
        "Runtime-pool workers respawned after a task panicked.",
        pool_stats.worker_restarts,
    );
    counter(
        &mut out,
        "ampc_jobs_retried_total",
        "Job-level retries of transiently failed colorings.",
        counters.jobs_retried,
    );
    counter(
        &mut out,
        "ampc_rounds_retried_total",
        "AMPC round attempts replayed after a panic or deadline overrun.",
        faults.rounds_retried,
    );
    push_family(
        &mut out,
        "ampc_faults_injected_total",
        "Faults fired by the deterministic injection plan (AMPC_FAULTS), by kind.",
        "counter",
    );
    for (kind, value) in [
        ("panic", faults.injected_panics),
        ("stall", faults.injected_stalls),
        ("merge_failure", faults.injected_merge_failures),
        ("alloc_pressure", faults.injected_allocs),
        ("worker_kill", faults.worker_kills),
    ] {
        push_sample(
            &mut out,
            "ampc_faults_injected_total",
            &[("kind", kind)],
            value as f64,
        );
    }
    // The multi-process backend's supervision plane: live shard-worker
    // children, crash respawns, and rounds replayed onto a fresh child.
    gauge(
        &mut out,
        "ampc_workers_alive",
        "Live ampc-shard-worker child processes across all process backends.",
        ampc_runtime::faults::workers_alive() as f64,
    );
    counter(
        &mut out,
        "ampc_worker_process_restarts_total",
        "Shard-worker child processes respawned after dying mid-round.",
        faults.worker_process_restarts,
    );
    counter(
        &mut out,
        "ampc_rounds_replayed_total",
        "Round inputs replayed onto a respawned shard-worker child.",
        faults.rounds_replayed,
    );

    push_histogram(
        &mut out,
        "ampc_request_latency_microseconds",
        "HTTP request handling latency (parsed head to rendered response).",
        &state.request_micros,
    );
    push_histogram(
        &mut out,
        "ampc_queue_wait_microseconds",
        "Time jobs spent waiting in the submission queue.",
        manager.queue_wait_micros(),
    );
    push_histogram(
        &mut out,
        "ampc_job_execution_microseconds",
        "Wall-clock execution time of computed (non-cached) jobs.",
        manager.execution_micros(),
    );
    out
}

fn push_family(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(help);
    out.push_str("\n# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

fn push_sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (index, (label, label_value)) in labels.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            out.push_str(label);
            out.push_str("=\"");
            out.push_str(label_value);
            out.push('"');
        }
        out.push('}');
    }
    // Counters and gauges are integral or finite here; {} on f64 renders
    // integers without a trailing ".0", which Prometheus parses fine.
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

/// One histogram family in Prometheus shape: cumulative `_bucket{le=…}`
/// samples over the non-empty buckets, the mandatory `+Inf` bucket, then
/// `_sum` and `_count`.
fn push_histogram(out: &mut String, name: &str, help: &str, histogram: &LatencyHistogram) {
    push_family(out, name, help, "histogram");
    let bucket_name = format!("{name}_bucket");
    let buckets = histogram.cumulative_buckets();
    // A record racing this scrape may have bumped a bucket after `count`
    // was read (or vice versa); clamping keeps +Inf >= every bucket, the
    // monotonicity Prometheus requires of one exposition.
    let total = histogram.count().max(buckets.last().map_or(0, |&(_, c)| c));
    for (le, cumulative) in buckets {
        push_sample(
            out,
            &bucket_name,
            &[("le", le.to_string().as_str())],
            cumulative as f64,
        );
    }
    push_sample(out, &bucket_name, &[("le", "+Inf")], total as f64);
    push_sample(out, &format!("{name}_sum"), &[], histogram.sum() as f64);
    push_sample(out, &format!("{name}_count"), &[], total as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Whether the `ampc-shard-worker` binary (a workspace-root bin, not
    /// built by a `-p ampc-service` test run) is available for
    /// runtime=process jobs.
    fn shard_worker_built() -> bool {
        if std::env::var_os("AMPC_SHARD_WORKER").is_some() {
            return true;
        }
        let Ok(exe) = std::env::current_exe() else {
            return false;
        };
        let name = format!("ampc-shard-worker{}", std::env::consts::EXE_SUFFIX);
        let found = [exe.parent(), exe.parent().and_then(std::path::Path::parent)]
            .into_iter()
            .flatten()
            .any(|dir| dir.join(&name).is_file());
        found
    }

    fn boot() -> ServerHandle {
        Server::bind(
            "127.0.0.1:0",
            ServiceConfig {
                workers: 1,
                acceptors: 2,
                ..ServiceConfig::default()
            },
        )
        .unwrap()
        .start()
        .unwrap()
    }

    /// Sends one raw HTTP/1.1 request, returns (status, body).
    fn request(addr: SocketAddr, method: &str, target: &str, body: &str) -> (u16, String) {
        ampc_coloring_bench::http_client::request(
            addr,
            method,
            target,
            body,
            Some(Duration::from_secs(60)),
        )
        .expect("request")
    }

    #[test]
    fn healthz_metrics_and_unknown_routes() {
        let handle = boot();
        let addr = handle.addr();
        let (status, body) = request(addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "{body}");

        let (status, body) = request(addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"endpoints\""), "{body}");
        assert!(body.contains("\"pool\""), "{body}");

        let (status, _) = request(addr, "GET", "/nope", "");
        assert_eq!(status, 404);
        let (status, _) = request(addr, "GET", "/v1/jobs/abc", "");
        assert_eq!(status, 400);
        let (status, _) = request(addr, "GET", "/v1/jobs/424242", "");
        assert_eq!(status, 404);
        let (status, _) = request(addr, "GET", "/v1/jobs/424242/trace", "");
        assert_eq!(status, 404);
        let (status, _) = request(addr, "GET", "/v1/jobs/1/nope", "");
        assert_eq!(status, 404);
        handle.shutdown();
    }

    #[test]
    fn prometheus_exposition_renders_families_and_histograms() {
        let handle = boot();
        let addr = handle.addr();
        // A request before the scrape so the latency histogram is non-empty.
        let (status, _) = request(addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        let (status, body) = request(addr, "GET", "/metrics?format=prometheus", "");
        assert_eq!(status, 200);
        for needle in [
            "# HELP ampc_http_requests_total",
            "# TYPE ampc_http_requests_total counter",
            "ampc_http_requests_total{endpoint=\"healthz\"} 1",
            "# TYPE ampc_queue_depth gauge",
            "# TYPE ampc_request_latency_microseconds histogram",
            "ampc_request_latency_microseconds_bucket{le=\"+Inf\"}",
            "ampc_request_latency_microseconds_sum",
            "ampc_request_latency_microseconds_count",
        ] {
            assert!(body.contains(needle), "missing `{needle}` in:\n{body}");
        }
        // Every sample name+labels appears exactly once (no duplicates).
        let mut samples: Vec<&str> = body
            .lines()
            .filter(|line| !line.starts_with('#') && !line.is_empty())
            .map(|line| line.rsplit_once(' ').expect("sample line").0)
            .collect();
        let total = samples.len();
        samples.sort_unstable();
        samples.dedup();
        assert_eq!(samples.len(), total, "duplicate samples in:\n{body}");
        // The default format is still the JSON document.
        let (status, body) = request(addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        assert!(body.starts_with('{'), "{body}");
        assert!(body.contains("\"latency\""), "{body}");
        handle.shutdown();
    }

    /// Pins the gauge/counter/histogram kind of EVERY exposed family.
    /// Prometheus clients apply different semantics per kind (counters
    /// get rate(), gauges don't), so a silent kind change corrupts
    /// downstream dashboards. Adding a family means adding it here.
    #[test]
    fn prometheus_family_types_are_pinned() {
        let expected = [
            ("ampc_uptime_seconds", "gauge"),
            ("ampc_build_info", "gauge"),
            ("ampc_http_requests_total", "counter"),
            ("ampc_http_connections_total", "counter"),
            ("ampc_http_keepalive_reused_total", "counter"),
            ("ampc_jobs_submitted_total", "counter"),
            ("ampc_jobs_completed_total", "counter"),
            ("ampc_jobs_failed_total", "counter"),
            ("ampc_jobs_computed_total", "counter"),
            ("ampc_jobs_running", "gauge"),
            ("ampc_queue_depth", "gauge"),
            ("ampc_queue_capacity", "gauge"),
            ("ampc_cache_hits_total", "counter"),
            ("ampc_cache_misses_total", "counter"),
            ("ampc_cache_coalesced_total", "counter"),
            ("ampc_cache_evicted_total", "counter"),
            ("ampc_cache_expired_total", "counter"),
            ("ampc_cache_entries", "gauge"),
            ("ampc_pool_workers", "gauge"),
            ("ampc_pool_steals_total", "counter"),
            ("ampc_pool_overflows_total", "counter"),
            ("ampc_pool_tasks_total", "counter"),
            ("ampc_pool_helper_tasks_total", "counter"),
            ("ampc_pool_idle_nanoseconds_total", "counter"),
            ("ampc_sync_waiters", "gauge"),
            ("ampc_sync_waiters_max", "gauge"),
            ("ampc_perf_available", "gauge"),
            ("ampc_perf_sampled_jobs_total", "counter"),
            ("ampc_perf_cycles_total", "counter"),
            ("ampc_perf_instructions_total", "counter"),
            ("ampc_perf_cache_references_total", "counter"),
            ("ampc_perf_cache_misses_total", "counter"),
            ("ampc_perf_branch_misses_total", "counter"),
            ("ampc_scratch_reuses_total", "counter"),
            ("ampc_scratch_allocs_total", "counter"),
            ("ampc_breaker_open", "gauge"),
            ("ampc_requests_shed_total", "counter"),
            ("ampc_pool_worker_restarts_total", "counter"),
            ("ampc_jobs_retried_total", "counter"),
            ("ampc_rounds_retried_total", "counter"),
            ("ampc_faults_injected_total", "counter"),
            ("ampc_workers_alive", "gauge"),
            ("ampc_worker_process_restarts_total", "counter"),
            ("ampc_rounds_replayed_total", "counter"),
            ("ampc_request_latency_microseconds", "histogram"),
            ("ampc_queue_wait_microseconds", "histogram"),
            ("ampc_job_execution_microseconds", "histogram"),
        ];
        let handle = boot();
        let (status, body) = request(handle.addr(), "GET", "/metrics?format=prometheus", "");
        assert_eq!(status, 200);
        let mut seen: Vec<(&str, &str)> = body
            .lines()
            .filter_map(|line| line.strip_prefix("# TYPE "))
            .map(|rest| rest.split_once(' ').expect("TYPE line"))
            .collect();
        for (family, kind) in expected {
            let position = seen
                .iter()
                .position(|&(name, _)| name == family)
                .unwrap_or_else(|| panic!("family `{family}` missing from exposition:\n{body}"));
            assert_eq!(
                seen.remove(position).1,
                kind,
                "family `{family}` changed kind"
            );
        }
        assert!(
            seen.is_empty(),
            "unaudited families {seen:?} — classify them here"
        );
        handle.shutdown();
    }

    #[test]
    fn version_endpoint_and_metrics_carry_build_info_and_perf() {
        let handle = boot();
        let addr = handle.addr();
        let (status, body) = request(addr, "GET", "/v1/version", "");
        assert_eq!(status, 200);
        for needle in [
            "\"name\":\"ampc-service\"",
            "\"version\":\"",
            "\"git_hash\":\"",
            "\"rustc\":\"",
            "\"uptime_seconds\":",
            "\"perf_available\":",
        ] {
            assert!(body.contains(needle), "missing `{needle}` in:\n{body}");
        }

        // The same build identity and the perf block appear in /metrics,
        // with `available` honestly reporting the probe result.
        let (status, body) = request(addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"build_info\":{"), "{body}");
        assert!(body.contains("\"uptime_seconds\":"), "{body}");
        let expected = format!(
            "\"perf\":{{\"available\":{}",
            ampc_runtime::perf::available()
        );
        assert!(body.contains(&expected), "missing `{expected}` in:\n{body}");

        // The /v1/version hits above are counted under their own endpoint
        // label, and perf availability is exposed as a 0/1 gauge.
        let (status, body) = request(addr, "GET", "/metrics?format=prometheus", "");
        assert_eq!(status, 200);
        assert!(
            body.contains("ampc_http_requests_total{endpoint=\"version\"} 1"),
            "{body}"
        );
        let perf_gauge = format!(
            "ampc_perf_available {}",
            if ampc_runtime::perf::available() {
                1
            } else {
                0
            }
        );
        assert!(
            body.contains(&perf_gauge),
            "missing `{perf_gauge}`:\n{body}"
        );
        handle.shutdown();
    }

    #[test]
    fn trace_endpoint_serves_chrome_trace_json() {
        let handle = boot();
        let addr = handle.addr();
        let (status, response) = request(
            addr,
            "POST",
            "/v1/color?algorithm=two-alpha-plus-one&alpha=1&wait=1",
            "0 1\n1 2\n2 3\n3 0\n",
        );
        assert_eq!(status, 200, "{response}");
        assert!(response.contains("\"trace_id\":\""), "{response}");
        assert!(response.contains("\"trace_available\":true"), "{response}");
        let id = ampc_coloring_bench::http_client::json_u64(&response, "job").expect("job id");
        let (status, trace) = request(addr, "GET", &format!("/v1/jobs/{id}/trace"), "");
        assert_eq!(status, 200, "{trace}");
        assert!(trace.contains("\"traceEvents\":["), "{trace}");
        assert!(trace.contains("\"ph\":\"X\""), "{trace}");
        assert!(trace.contains("\"phase.coloring\""), "{trace}");
        assert!(trace.contains("\"backend.round\""), "{trace}");

        // A cache hit shares the result but not the timeline.
        let (status, response) = request(
            addr,
            "POST",
            "/v1/color?algorithm=two-alpha-plus-one&alpha=1&wait=1",
            "0 1\n1 2\n2 3\n3 0\n",
        );
        assert_eq!(status, 200, "{response}");
        assert!(response.contains("\"cached\":true"), "{response}");
        assert!(response.contains("\"trace_available\":false"), "{response}");
        let cached = ampc_coloring_bench::http_client::json_u64(&response, "job").expect("job id");
        let (status, body) = request(addr, "GET", &format!("/v1/jobs/{cached}/trace"), "");
        assert_eq!(status, 404, "{body}");
        handle.shutdown();
    }

    #[test]
    fn disabled_tracing_serves_no_timelines() {
        let handle = Server::bind(
            "127.0.0.1:0",
            ServiceConfig {
                workers: 1,
                acceptors: 2,
                trace_events: 0,
                ..ServiceConfig::default()
            },
        )
        .unwrap()
        .start()
        .unwrap();
        let addr = handle.addr();
        let (status, response) = request(addr, "POST", "/v1/color?alpha=1&wait=1", "0 1\n1 2\n");
        assert_eq!(status, 200, "{response}");
        assert!(response.contains("\"trace_available\":false"), "{response}");
        let id = ampc_coloring_bench::http_client::json_u64(&response, "job").expect("job id");
        let (status, body) = request(addr, "GET", &format!("/v1/jobs/{id}/trace"), "");
        assert_eq!(status, 404, "{body}");
        assert!(body.contains("tracing is disabled"), "{body}");
        handle.shutdown();
    }

    #[test]
    fn color_round_trip_with_wait() {
        let handle = boot();
        let addr = handle.addr();
        // A 4-cycle: 2-colorable, alpha 1.
        let body = "0 1\n1 2\n2 3\n3 0\n";
        let (status, response) = request(
            addr,
            "POST",
            "/v1/color?algorithm=two-alpha-plus-one&alpha=1&wait=1",
            body,
        );
        assert_eq!(status, 200, "{response}");
        assert!(response.contains("\"status\":\"done\""), "{response}");
        assert!(response.contains("\"coloring\":["), "{response}");
        assert!(response.contains("\"runtime_stats\""), "{response}");

        // shards=0 selects the auto-tuned shard count and is accepted.
        let (status, response) = request(
            addr,
            "POST",
            "/v1/color?algorithm=two-alpha-plus-one&alpha=1&runtime=parallel&threads=2&shards=0&wait=1",
            body,
        );
        assert_eq!(status, 200, "{response}");
        assert!(response.contains("\"status\":\"done\""), "{response}");

        // The multi-process runtime serves jobs too (`workers=` alone
        // implies it, like `threads=` implies parallel) — when the
        // ampc-shard-worker binary is built; skip quietly when this crate's
        // tests run without the workspace root's bins.
        if shard_worker_built() {
            let (status, response) = request(
                addr,
                "POST",
                "/v1/color?algorithm=two-alpha-plus-one&alpha=1&workers=2&wait=1",
                body,
            );
            assert_eq!(status, 200, "{response}");
            assert!(response.contains("\"status\":\"done\""), "{response}");
        } else {
            eprintln!("skipping runtime=process leg: ampc-shard-worker not built");
        }

        // Async path: 202 then poll.
        let (status, response) = request(addr, "POST", "/v1/color?alpha=1", body);
        assert_eq!(status, 202, "{response}");
        let id = ampc_coloring_bench::http_client::json_u64(&response, "job")
            .expect("job id in response");
        let view = handle
            .manager()
            .wait(id, Duration::from_secs(30))
            .expect("job exists");
        assert!(view.status.is_terminal());
        let (status, response) = request(addr, "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status, 200);
        assert!(response.contains("\"status\":\"done\""), "{response}");
        handle.shutdown();
    }

    /// Graceful shutdown, stage by stage: drain mode sheds new
    /// submissions with `503 + Retry-After` while read-only endpoints and
    /// result polling keep serving, and the bounded drain reports an idle
    /// service before the acceptors stop.
    #[test]
    fn drain_mode_sheds_submissions_and_drains_cleanly() {
        let handle = boot();
        let addr = handle.addr();
        let body = "0 1\n1 2\n2 3\n";

        // Before draining: submissions are accepted.
        let (status, response) = request(addr, "POST", "/v1/color?alpha=1&wait=1", body);
        assert_eq!(status, 200, "{response}");
        let (status, response) = request(addr, "POST", "/v1/color?alpha=1", body);
        assert_eq!(status, 202, "{response}");
        let id = ampc_coloring_bench::http_client::json_u64(&response, "job").expect("job id");

        handle.begin_drain();

        // New submissions are shed with 503 + Retry-After (read the raw
        // head: the shared client discards headers).
        let mut stream = TcpStream::connect(addr).unwrap();
        let (status, _, _) = raw_request(&mut stream, "POST", "/v1/color?alpha=1", body, "");
        assert_eq!(status, 503);
        drop(stream);
        let mut stream = TcpStream::connect(addr).unwrap();
        {
            use std::io::{Read, Write};
            let head = format!(
                "POST /v1/color?alpha=1 HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                body.len()
            );
            stream.write_all(head.as_bytes()).unwrap();
            stream.write_all(body.as_bytes()).unwrap();
            let mut response = String::new();
            let _ = stream.read_to_string(&mut response);
            assert!(response.starts_with("HTTP/1.1 503"), "{response}");
            assert!(
                response.to_ascii_lowercase().contains("retry-after:"),
                "missing Retry-After in:\n{response}"
            );
        }

        // Read-only endpoints keep serving: stragglers can still poll
        // results and orchestrators can watch the drain.
        let (status, response) = request(addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        assert!(response.contains("\"draining\":true"), "{response}");
        let (status, response) = request(addr, "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status, 200, "{response}");
        let (status, _) = request(addr, "GET", "/metrics", "");
        assert_eq!(status, 200);

        // The queue empties and the running jobs finish inside the bound.
        assert!(
            handle.shutdown_graceful(Duration::from_secs(30)),
            "service did not drain in time"
        );
    }

    #[test]
    fn invalid_inputs_are_4xx() {
        let handle = boot();
        let addr = handle.addr();
        let edge_list = "0 1\n";
        for target in [
            "/v1/color?algorithm=nope",
            "/v1/color?alpha=-3",
            "/v1/color?policy=keep-max",
            "/v1/color?runtime=warp",
            "/v1/color?runtime=sequential&threads=4",
            "/v1/color?runtime=sequential&workers=2",
            "/v1/color?runtime=parallel&workers=2",
            "/v1/color?runtime=process&threads=2",
            "/v1/color?runtime=process&shards=8",
            "/v1/color?workers=0",
            "/v1/color?workers=1000",
            "/v1/color?epsilon=abc",
            "/v1/color?shards=1000000000",
            "/v1/color?threads=0",
            // Out-of-domain numerics are rejected before submission — a
            // NaN epsilon parses as f64 but must never reach the queue
            // (or the result cache).
            "/v1/color?epsilon=NaN",
            "/v1/color?epsilon=-1.5",
            "/v1/color?delta=0",
            "/v1/color?delta=inf",
            "/v1/color?alpha=0",
            "/v1/color?max_rounds=0",
        ] {
            let (status, body) = request(addr, "POST", target, edge_list);
            assert_eq!(status, 400, "{target}: {body}");
            assert!(body.contains("\"error\""), "{target}: {body}");
        }
        // A huge node id must be rejected, not allocated.
        let (status, body) = request(addr, "POST", "/v1/color", "0 999999999999999\n");
        assert_eq!(status, 400);
        assert!(body.contains("exceeds the limit"), "{body}");
        let (status, _) = request(
            addr,
            "POST",
            "/v1/color?min_nodes=999999999999999",
            edge_list,
        );
        assert_eq!(status, 400);
        // Malformed edge list.
        let (status, body) = request(addr, "POST", "/v1/color", "0 1\nbroken\n");
        assert_eq!(status, 400);
        assert!(body.contains("line 2"), "{body}");
        // Empty body.
        let (status, _) = request(addr, "POST", "/v1/color", "");
        assert_eq!(status, 400);
        // Invalid requests are rejected up front, never queued: a job id
        // is only minted for runnable specs.
        let (status, body) = request(addr, "POST", "/v1/color?alpha=0&wait=1", edge_list);
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("alpha"), "{body}");
        handle.shutdown();
    }

    #[test]
    fn wait_degrades_to_async_when_no_slots_are_free() {
        // One acceptor means zero synchronous-wait slots (one acceptor is
        // always reserved for non-waiting endpoints), so wait=1 degrades
        // to the async 202 flow instead of parking the only acceptor.
        let handle = Server::bind(
            "127.0.0.1:0",
            ServiceConfig {
                workers: 1,
                acceptors: 1,
                ..ServiceConfig::default()
            },
        )
        .unwrap()
        .start()
        .unwrap();
        let addr = handle.addr();
        let (status, body) = request(addr, "POST", "/v1/color?alpha=1&wait=1", "0 1\n1 2\n");
        // A fresh job degrades to 202-with-poll; if the tiny job finished
        // within the handler itself, the terminal shortcut serves it as
        // 200 instead — both are correct, neither parks the acceptor.
        match status {
            202 => assert!(body.contains("wait slots"), "{body}"),
            200 => assert!(body.contains("\"status\":\"done\""), "{body}"),
            other => panic!("unexpected status {other}: {body}"),
        }
        let id =
            ampc_coloring_bench::http_client::json_u64(&body, "job").expect("job id in response");
        let view = handle
            .manager()
            .wait(id, Duration::from_secs(30))
            .expect("job exists");
        assert_eq!(view.status.label(), "done");
        // The health endpoint stayed reachable throughout.
        let (status, _) = request(addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        // An identical resubmission is terminal at submit time (cache
        // hit): even with zero wait slots it is served outright as 200.
        let (status, body) = request(addr, "POST", "/v1/color?alpha=1&wait=1", "0 1\n1 2\n");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"status\":\"done\""), "{body}");
        assert!(body.contains("\"cached\":true"), "{body}");
        handle.shutdown();
    }

    /// Sends one request on an already-open stream and reads exactly one
    /// response, returning `(status, body, connection-header)` — the
    /// keep-alive test client (the shared `http_client` closes after every
    /// request by design).
    fn raw_request(
        stream: &mut TcpStream,
        method: &str,
        target: &str,
        body: &str,
        extra_headers: &str,
    ) -> (u16, String, String) {
        use std::io::{Read, Write};
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n{extra_headers}\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes()).unwrap();
        stream.write_all(body.as_bytes()).unwrap();
        let mut buffer = Vec::new();
        let mut byte = [0u8; 1];
        while !buffer.ends_with(b"\r\n\r\n") {
            let read = stream.read(&mut byte).expect("response head");
            assert!(read > 0, "connection closed mid-response");
            buffer.push(byte[0]);
        }
        let head_text = String::from_utf8_lossy(&buffer).into_owned();
        let status: u16 = head_text
            .split_whitespace()
            .nth(1)
            .expect("status line")
            .parse()
            .expect("numeric status");
        let header = |name: &str| -> Option<String> {
            head_text.lines().find_map(|line| {
                line.to_ascii_lowercase()
                    .strip_prefix(&format!("{name}:"))
                    .map(|value| value.trim().to_string())
            })
        };
        let content_length: usize = header("content-length")
            .and_then(|value| value.parse().ok())
            .unwrap_or(0);
        let connection = header("connection").unwrap_or_default();
        let mut body_buffer = vec![0u8; content_length];
        stream.read_exact(&mut body_buffer).expect("response body");
        (
            status,
            String::from_utf8_lossy(&body_buffer).into_owned(),
            connection,
        )
    }

    #[test]
    fn keep_alive_reuses_connections_and_counts_them() {
        let handle = boot();
        let addr = handle.addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();

        // Several requests on ONE connection, including a POST whose body
        // must be fully consumed before the next head is parsed.
        let (status, body, connection) = raw_request(&mut stream, "GET", "/healthz", "", "");
        assert_eq!(status, 200, "{body}");
        assert_eq!(connection, "keep-alive");
        let (status, body, connection) = raw_request(
            &mut stream,
            "POST",
            "/v1/color?algorithm=two-alpha-plus-one&alpha=1&wait=1",
            "0 1\n1 2\n2 3\n3 0\n",
            "",
        );
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"status\":\"done\""), "{body}");
        assert_eq!(connection, "keep-alive");
        // 4xx responses on a clean body keep the connection alive too.
        let (status, _, connection) = raw_request(&mut stream, "GET", "/nope", "", "");
        assert_eq!(status, 404);
        assert_eq!(connection, "keep-alive");

        let (status, metrics, _) = raw_request(&mut stream, "GET", "/metrics", "", "");
        assert_eq!(status, 200);
        assert!(metrics.contains("\"keepalive_reused\":3"), "{metrics}");
        assert!(metrics.contains("\"connections\":"), "{metrics}");

        // Connection: close is honored — the server answers close and
        // shuts the socket down.
        let (status, _, connection) =
            raw_request(&mut stream, "GET", "/healthz", "", "Connection: close\r\n");
        assert_eq!(status, 200);
        assert_eq!(connection, "close");
        let mut rest = Vec::new();
        use std::io::Read;
        assert_eq!(stream.read_to_end(&mut rest).unwrap_or(0), 0, "closed");
        handle.shutdown();
    }

    #[test]
    fn keep_alive_requests_per_connection_are_bounded() {
        let handle = Server::bind(
            "127.0.0.1:0",
            ServiceConfig {
                workers: 1,
                acceptors: 2,
                max_requests_per_connection: 2,
                ..ServiceConfig::default()
            },
        )
        .unwrap()
        .start()
        .unwrap();
        let addr = handle.addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let (status, _, connection) = raw_request(&mut stream, "GET", "/healthz", "", "");
        assert_eq!(status, 200);
        assert_eq!(connection, "keep-alive");
        // The cap closes the connection after the second request even
        // though the client never asked for close.
        let (status, _, connection) = raw_request(&mut stream, "GET", "/healthz", "", "");
        assert_eq!(status, 200);
        assert_eq!(connection, "close");
        let mut rest = Vec::new();
        use std::io::Read;
        assert_eq!(stream.read_to_end(&mut rest).unwrap_or(0), 0, "closed");
        handle.shutdown();
    }

    #[test]
    fn wait_slots_are_capped_and_released() {
        let state = ServerState {
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            counters: EndpointCounters::default(),
            sync_waiters: AtomicUsize::new(0),
            max_sync_waiters: 2,
            request_micros: LatencyHistogram::new(),
            breaker_open: AtomicBool::new(false),
        };
        let first = WaitSlot::acquire(&state).expect("slot 1");
        let second = WaitSlot::acquire(&state).expect("slot 2");
        assert!(
            WaitSlot::acquire(&state).is_none(),
            "the cap must hold under load"
        );
        drop(first);
        let third = WaitSlot::acquire(&state).expect("released slots are reusable");
        drop(second);
        drop(third);
        assert_eq!(state.sync_waiters.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn node_cap_scales_with_body_size() {
        // Tiny bodies get the floor, mid-size bodies scale linearly, and
        // nothing exceeds the configured server-wide maximum.
        assert_eq!(node_cap_for_body(0, 1 << 22), 4096);
        assert_eq!(node_cap_for_body(30, 1 << 22), 4096);
        assert_eq!(node_cap_for_body(100_000, 1 << 22), 400_000);
        assert_eq!(node_cap_for_body(usize::MAX, 1 << 22), 1 << 22);
        // A ~30-byte body can no longer demand the server-wide maximum via
        // min_nodes: the 400 names the body-proportional limit.
        let handle = boot();
        let addr = handle.addr();
        let (status, body) = request(addr, "POST", "/v1/color?min_nodes=1000000", "0 1\n");
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("proportional"), "{body}");
        // Within the request's own limit, min_nodes still pads the graph.
        let (status, body) = request(addr, "POST", "/v1/color?min_nodes=100&wait=1", "0 1\n");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"nodes\":100"), "{body}");
        handle.shutdown();
    }

    #[test]
    fn breaker_hysteresis_opens_high_and_closes_low() {
        // Closed below 7/8 of capacity, open at or above it.
        assert!(!breaker_transition(false, 0, 64));
        assert!(!breaker_transition(false, 55, 64));
        assert!(breaker_transition(false, 56, 64));
        assert!(breaker_transition(false, 64, 64));
        // Once open it stays open until the queue drains to half capacity
        // — the dead band between 1/2 and 7/8 prevents flapping.
        assert!(breaker_transition(true, 55, 64));
        assert!(breaker_transition(true, 33, 64));
        assert!(!breaker_transition(true, 32, 64));
        assert!(!breaker_transition(true, 0, 64));
        // Degenerate single-slot queue: opens when occupied, closes when
        // empty, never divides by zero (callers clamp capacity to >= 1).
        assert!(breaker_transition(false, 1, 1));
        assert!(breaker_transition(true, 1, 1));
        assert!(!breaker_transition(true, 0, 1));
    }

    /// Byte-level fuzzing of the `/v1/color` HTTP surface: randomly
    /// mutated query strings and bodies must produce structured HTTP
    /// errors (or successes), never a hung connection, a 500, or a dead
    /// server. Deterministic LCG so a failure reproduces exactly.
    #[test]
    fn fuzzed_color_requests_get_structured_errors_and_server_survives() {
        let handle = boot();
        let addr = handle.addr();
        let mut lcg = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (lcg >> 33) as u32
        };
        let base_target = "/v1/color?algorithm=two-alpha-plus-one&alpha=1&min_nodes=8&timeout_ms=5";
        let base_body = "0 1\n1 2\n2 3\n3 0\n4 5\n";
        for round in 0..64 {
            // Query mutations stay printable non-whitespace ASCII so the
            // request line itself remains parseable — the point is to fuzz
            // the route/query/spec parsing, not the HTTP framing.
            let mut target = base_target.as_bytes().to_vec();
            for _ in 0..=(next() % 4) {
                let at = 10 + next() as usize % (target.len() - 10);
                target[at] = b'!' + (next() % 94) as u8;
            }
            let target = String::from_utf8(target).unwrap();
            // Bodies may mutate to arbitrary bytes: they are length-framed,
            // and the edge-list parser must reject garbage structurally.
            let mut body = base_body.as_bytes().to_vec();
            for _ in 0..=(next() % 6) {
                let at = next() as usize % body.len();
                body[at] = next() as u8;
            }
            let body = String::from_utf8_lossy(&body).into_owned();
            let (status, response) = request(addr, "POST", &target, &body);
            assert!(
                matches!(status, 200 | 202 | 400 | 404 | 408 | 413 | 429 | 503),
                "round {round}: unexpected status {status} for {target:?} -> {response}"
            );
            assert_ne!(status, 500, "round {round}: internal error leaked");
            if status == 400 {
                assert!(
                    response.contains("\"error\""),
                    "round {round}: unstructured 400 body: {response}"
                );
            }
        }
        // The server took 64 hostile requests and still answers probes.
        let (status, body) = request(addr, "GET", "/healthz", "");
        assert_eq!(status, 200, "{body}");
        handle.shutdown();
    }
}
