//! # ampc-service
//!
//! The serving subsystem over [`ampc_coloring::SparseColoring`]: a
//! dependency-free HTTP/1.1 front-end (hand-rolled over
//! `std::net::TcpListener`; the build environment has no crate registry)
//! that makes the paper's AMPC sparse-coloring pipeline callable under
//! concurrent load.
//!
//! ## Endpoints
//!
//! | method & path | purpose |
//! |---|---|
//! | `POST /v1/color` | submit an edge-list body; query params select algorithm, `alpha`, `epsilon`, `delta`, `runtime`/`threads`/`shards`, `policy`; `wait=1` blocks for the result; responses carry `X-Job-Id` and `X-Trace-Id` headers |
//! | `GET /v1/jobs/{id}` | job status plus the result and its `AmpcMetrics` (rendered through the workspace's no-serde table serializer) |
//! | `GET /v1/jobs/{id}/trace` | the job's span timeline as Chrome trace-event JSON (Perfetto-loadable): every AMPC round, simulator phase and backend merge of the computation |
//! | `GET /healthz` | liveness |
//! | `GET /metrics` | per-endpoint counters, queue depth, job/cache counters, latency histograms, persistent-pool reuse stats, recent jobs; `?format=prometheus` switches to the Prometheus text exposition |
//!
//! ## Architecture
//!
//! ```text
//!   acceptor threads (fixed)          job workers (fixed)
//!   ──────────────────────   submit   ───────────────────
//!   read_head ─ route ─────▶ bounded ─▶ SparseColoring::color_request
//!        │                   queue          │
//!        ▼                     ▲            ▼
//!   read_edge_list         single-flight  persistent WorkerPool
//!   (streamed from the     ResultCache    (ampc_runtime, shared
//!    socket body)          (graph+config   process-wide: zero thread
//!                           keyed)         spawns per round or job)
//! ```
//!
//! Identical `(graph, config)` submissions are served from the cache or
//! coalesced onto the in-flight computation, so the work runs **once**; all
//! AMPC rounds execute on the persistent [`ampc_runtime::WorkerPool`],
//! keeping the process's thread count constant across any job sequence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod http;
pub mod jobs;
pub mod json;
pub mod server;

pub use cache::{CacheCounters, Claim, ResultCache};
pub use jobs::{
    job_key, trace_id, JobManager, JobSpec, JobStatus, JobView, ManagerCounters, ServiceConfig,
    SubmitError,
};
pub use server::{Server, ServerHandle};
