//! The keyed result cache with in-flight request coalescing.
//!
//! Jobs are bucketed by a deterministic 64-bit hash of `(graph, config)`,
//! but every claim verifies the *actual* graph and spec against the stored
//! entry — a hash collision (accidental or attacker-crafted, FNV is not
//! collision-resistant) therefore computes separately instead of serving
//! the wrong coloring. The first submission of an entry claims the
//! computation; later identical submissions either wait on the in-flight
//! computation (coalescing — the work runs **once**) or are served the
//! ready result immediately. Ready results are capped FIFO so a
//! long-running server's memory stays bounded.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ampc_coloring::ColoringOutcome;
use sparse_graph::CsrGraph;

use crate::jobs::JobSpec;

/// What a submitter should do with its job, as decided by
/// [`ResultCache::claim`].
#[derive(Debug)]
pub enum Claim {
    /// This submitter computes; identical later submissions wait.
    Compute,
    /// An identical job is already computing; this job was registered as a
    /// waiter and will be fulfilled with the computing job's result.
    Coalesced,
    /// The result is already cached.
    Hit(Arc<ColoringOutcome>),
}

impl PartialEq for Claim {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Claim::Compute, Claim::Compute) | (Claim::Coalesced, Claim::Coalesced) => true,
            (Claim::Hit(a), Claim::Hit(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

#[derive(Debug)]
enum CacheState {
    InFlight { waiters: Vec<u64> },
    Ready(Arc<ColoringOutcome>),
}

/// One cached computation: the exact inputs plus its state. The inputs are
/// kept so claims can verify them (see module docs).
#[derive(Debug)]
struct CacheEntry {
    graph: Arc<CsrGraph>,
    spec: JobSpec,
    state: CacheState,
}

impl CacheEntry {
    fn matches(&self, graph: &Arc<CsrGraph>, spec: &JobSpec) -> bool {
        self.spec == *spec && (Arc::ptr_eq(&self.graph, graph) || *self.graph == **graph)
    }
}

#[derive(Debug, Default)]
struct CacheInner {
    buckets: HashMap<u64, Vec<CacheEntry>>,
    /// One element per `Ready` entry — its bucket key and the instant it
    /// became ready — oldest first (FIFO eviction *and* TTL sweep order:
    /// readiness times are monotone along the deque).
    ready_order: VecDeque<(u64, Instant)>,
    ready_count: usize,
    /// Total [`cache_cost`] across `Ready` entries (the budget eviction
    /// unit).
    ready_cost: usize,
}

/// What a ready entry charges against the cache budget: a `Ready` entry
/// pins the coloring (one cell per node) *and* the full `Arc<CsrGraph>`
/// kept for collision verification (adjacency ~ one cell per directed
/// edge), so both must count — a node-only budget would let a few dense
/// graphs pin unbounded edge memory.
fn cache_cost(graph: &CsrGraph) -> usize {
    graph.num_nodes() + 2 * graph.num_edges()
}

/// Counter snapshot of a [`ResultCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheCounters {
    /// Claims served from a ready entry.
    pub hits: u64,
    /// Claims that had to compute.
    pub misses: u64,
    /// Claims folded into an in-flight computation.
    pub coalesced: u64,
    /// Ready entries currently held.
    pub entries: u64,
    /// Ready entries dropped by the entry-count / cost-budget caps.
    pub evicted: u64,
    /// Ready entries dropped by the age-based TTL sweep.
    pub expired: u64,
}

/// A single-flight result cache with exact input verification, a FIFO cap
/// on ready entries — by entry count and by total result nodes — and an
/// age-based TTL sweep for long-running servers whose traffic never
/// pressures the caps.
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    node_budget: usize,
    ttl: Duration,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evicted: AtomicU64,
    expired: AtomicU64,
}

impl ResultCache {
    /// Creates an empty cache retaining at most `capacity` ready results
    /// totalling at most `node_budget` in [`cache_cost`] units (nodes plus
    /// directed edges of the pinned graphs; each at least 1; in-flight
    /// entries are never evicted), each for at most `ttl` after it became
    /// ready. The budget keeps memory bounded when few-but-huge entries
    /// would stay under the entry cap; the TTL bounds how stale a served
    /// result can be and releases memory on servers whose load never
    /// reaches the caps. The TTL sweep runs alongside every claim,
    /// publication and counter snapshot.
    pub fn new(capacity: usize, node_budget: usize, ttl: Duration) -> Self {
        ResultCache {
            inner: Mutex::new(CacheInner::default()),
            capacity: capacity.max(1),
            node_budget: node_budget.max(1),
            // Floored like the job TTL: a zero TTL would expire a result
            // inside the very fulfill() that published it.
            ttl: ttl.max(Duration::from_millis(10)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            expired: AtomicU64::new(0),
        }
    }

    /// Claims `(graph, spec)` under bucket `key` for the job `waiter`.
    pub fn claim(&self, key: u64, graph: &Arc<CsrGraph>, spec: &JobSpec, waiter: u64) -> Claim {
        let mut inner = self.inner.lock().expect("cache lock");
        self.expire_over_ttl(&mut inner);
        let bucket = inner.buckets.entry(key).or_default();
        for entry in bucket.iter_mut() {
            if !entry.matches(graph, spec) {
                continue;
            }
            return match &mut entry.state {
                CacheState::InFlight { waiters } => {
                    waiters.push(waiter);
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    Claim::Coalesced
                }
                CacheState::Ready(value) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    Claim::Hit(Arc::clone(value))
                }
            };
        }
        bucket.push(CacheEntry {
            graph: Arc::clone(graph),
            spec: *spec,
            state: CacheState::InFlight {
                waiters: Vec::new(),
            },
        });
        self.misses.fetch_add(1, Ordering::Relaxed);
        Claim::Compute
    }

    /// Publishes the computed result for `(graph, spec)`, returning the
    /// coalesced waiters to be fulfilled with it. Evicts the oldest ready
    /// results beyond the capacity.
    pub fn fulfill(
        &self,
        key: u64,
        graph: &Arc<CsrGraph>,
        spec: &JobSpec,
        value: Arc<ColoringOutcome>,
    ) -> Vec<u64> {
        let mut inner = self.inner.lock().expect("cache lock");
        let bucket = inner.buckets.entry(key).or_default();
        let mut claimed_waiters = Vec::new();
        let mut found = false;
        for entry in bucket.iter_mut() {
            if !entry.matches(graph, spec) {
                continue;
            }
            if let CacheState::InFlight { waiters } = &mut entry.state {
                claimed_waiters = std::mem::take(waiters);
            }
            entry.state = CacheState::Ready(Arc::clone(&value));
            found = true;
            break;
        }
        if !found {
            bucket.push(CacheEntry {
                graph: Arc::clone(graph),
                spec: *spec,
                state: CacheState::Ready(value),
            });
        }
        inner.ready_order.push_back((key, Instant::now()));
        inner.ready_count += 1;
        inner.ready_cost += cache_cost(graph);
        self.expire_over_ttl(&mut inner);
        self.evict_over_capacity(&mut inner);
        claimed_waiters
    }

    /// Drops the in-flight entry for `(graph, spec)` after a failed
    /// computation (identical future submissions recompute), returning the
    /// waiters to be failed alongside. Ready entries are untouched.
    pub fn abandon(&self, key: u64, graph: &Arc<CsrGraph>, spec: &JobSpec) -> Vec<u64> {
        let mut inner = self.inner.lock().expect("cache lock");
        let Some(bucket) = inner.buckets.get_mut(&key) else {
            return Vec::new();
        };
        let mut waiters = Vec::new();
        bucket.retain_mut(|entry| {
            if !entry.matches(graph, spec) {
                return true;
            }
            match &mut entry.state {
                CacheState::InFlight { waiters: pending } => {
                    waiters.append(pending);
                    false
                }
                CacheState::Ready(_) => true,
            }
        });
        if bucket.is_empty() {
            inner.buckets.remove(&key);
        }
        waiters
    }

    /// Drops the oldest `Ready` entry of bucket `key` (the entry the
    /// `ready_order` front element accounts for), fixing up the counters.
    fn drop_oldest_ready(inner: &mut CacheInner, key: u64) {
        if let Some(bucket) = inner.buckets.get_mut(&key) {
            if let Some(position) = bucket
                .iter()
                .position(|entry| matches!(entry.state, CacheState::Ready(_)))
            {
                let entry = bucket.remove(position);
                inner.ready_count -= 1;
                inner.ready_cost = inner.ready_cost.saturating_sub(cache_cost(&entry.graph));
            }
            if bucket.is_empty() {
                inner.buckets.remove(&key);
            }
        }
    }

    /// The age-based sweep: drops ready entries older than the TTL, front
    /// of the deque first (readiness times are monotone along it, so the
    /// sweep stops at the first fresh entry — O(expired) per call). Runs
    /// alongside the entry/cost-cap eviction on every claim, publication
    /// and counter snapshot; in-flight entries never expire.
    fn expire_over_ttl(&self, inner: &mut CacheInner) {
        let now = Instant::now();
        while let Some(&(key, ready_at)) = inner.ready_order.front() {
            if now.duration_since(ready_at) < self.ttl {
                break;
            }
            inner.ready_order.pop_front();
            Self::drop_oldest_ready(inner, key);
            self.expired.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn evict_over_capacity(&self, inner: &mut CacheInner) {
        while inner.ready_count > self.capacity || inner.ready_cost > self.node_budget {
            let Some((key, _)) = inner.ready_order.pop_front() else {
                break;
            };
            Self::drop_oldest_ready(inner, key);
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counter snapshot (also a TTL-sweep point, so `/metrics` probes on
    /// an idle server release expired results).
    pub fn counters(&self) -> CacheCounters {
        let entries = {
            let mut inner = self.inner.lock().expect("cache lock");
            self.expire_over_ttl(&mut inner);
            inner.ready_count as u64
        };
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            entries,
            evicted: self.evicted.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::job_key;
    use ampc_coloring::{ColorRequest, SparseColoring};
    use sparse_graph::generators;

    /// A TTL far beyond any test's runtime: the sweeps never fire.
    const LONG_TTL: Duration = Duration::from_secs(3600);

    fn graph(side: usize) -> Arc<CsrGraph> {
        Arc::new(generators::triangulated_grid(side, side))
    }

    fn outcome_for(graph: &Arc<CsrGraph>) -> Arc<ColoringOutcome> {
        Arc::new(SparseColoring::color_request(graph, &ColorRequest::default()).unwrap())
    }

    #[test]
    fn miss_coalesce_hit_lifecycle() {
        let cache = ResultCache::new(16, usize::MAX, LONG_TTL);
        let g = graph(4);
        let spec = JobSpec::default();
        let key = job_key(&g, &spec);
        assert_eq!(cache.claim(key, &g, &spec, 1), Claim::Compute);
        assert_eq!(cache.claim(key, &g, &spec, 2), Claim::Coalesced);
        assert_eq!(cache.claim(key, &g, &spec, 3), Claim::Coalesced);
        let value = outcome_for(&g);
        let waiters = cache.fulfill(key, &g, &spec, Arc::clone(&value));
        assert_eq!(waiters, vec![2, 3]);
        match cache.claim(key, &g, &spec, 4) {
            Claim::Hit(hit) => assert!(Arc::ptr_eq(&hit, &value)),
            other => panic!("expected a hit, got {other:?}"),
        }
        let counters = cache.counters();
        assert_eq!(
            (
                counters.misses,
                counters.coalesced,
                counters.hits,
                counters.entries
            ),
            (1, 2, 1, 1)
        );
    }

    #[test]
    fn colliding_keys_with_different_inputs_compute_separately() {
        let cache = ResultCache::new(16, usize::MAX, LONG_TTL);
        let g1 = graph(4);
        let g2 = graph(5);
        let spec = JobSpec::default();
        // Force both inputs into the same bucket (a simulated hash
        // collision): each must still get its own computation and result.
        let key = 7;
        assert_eq!(cache.claim(key, &g1, &spec, 1), Claim::Compute);
        assert_eq!(cache.claim(key, &g2, &spec, 2), Claim::Compute);
        let v1 = outcome_for(&g1);
        let v2 = outcome_for(&g2);
        cache.fulfill(key, &g1, &spec, Arc::clone(&v1));
        cache.fulfill(key, &g2, &spec, Arc::clone(&v2));
        match cache.claim(key, &g1, &spec, 3) {
            Claim::Hit(hit) => assert!(Arc::ptr_eq(&hit, &v1), "g1 must get g1's coloring"),
            other => panic!("expected a hit, got {other:?}"),
        }
        match cache.claim(key, &g2, &spec, 4) {
            Claim::Hit(hit) => assert!(Arc::ptr_eq(&hit, &v2), "g2 must get g2's coloring"),
            other => panic!("expected a hit, got {other:?}"),
        }
        // Differing specs on the same graph are also kept apart.
        let other_spec = JobSpec {
            request: ColorRequest {
                alpha: Some(7),
                ..ColorRequest::default()
            },
            ..JobSpec::default()
        };
        assert_eq!(cache.claim(key, &g1, &other_spec, 5), Claim::Compute);
    }

    #[test]
    fn abandon_allows_recompute_and_fails_waiters() {
        let cache = ResultCache::new(16, usize::MAX, LONG_TTL);
        let g = graph(4);
        let spec = JobSpec::default();
        let key = job_key(&g, &spec);
        assert_eq!(cache.claim(key, &g, &spec, 1), Claim::Compute);
        assert_eq!(cache.claim(key, &g, &spec, 2), Claim::Coalesced);
        assert_eq!(cache.abandon(key, &g, &spec), vec![2]);
        // The entry is free again: the next identical job recomputes.
        assert_eq!(cache.claim(key, &g, &spec, 3), Claim::Compute);
        cache.fulfill(key, &g, &spec, outcome_for(&g));
        // Abandoning a ready entry is a no-op.
        assert_eq!(cache.abandon(key, &g, &spec), Vec::<u64>::new());
        assert!(matches!(cache.claim(key, &g, &spec, 4), Claim::Hit(_)));
    }

    #[test]
    fn nan_specs_match_themselves_so_abandon_cannot_leak() {
        // f64::from_str parses "NaN"; before spec equality compared floats
        // by bit pattern, a NaN epsilon never equaled itself, so abandon()
        // could not find the in-flight entry and it leaked forever.
        let cache = ResultCache::new(16, usize::MAX, LONG_TTL);
        let g = graph(4);
        let spec = JobSpec {
            request: ColorRequest {
                epsilon: f64::NAN,
                ..ColorRequest::default()
            },
            ..JobSpec::default()
        };
        let same = spec;
        assert_eq!(spec, same, "spec equality must be total");
        let key = job_key(&g, &spec);
        assert_eq!(cache.claim(key, &g, &spec, 1), Claim::Compute);
        assert_eq!(cache.claim(key, &g, &spec, 2), Claim::Coalesced);
        // The failed computation finds and removes its own entry...
        assert_eq!(cache.abandon(key, &g, &spec), vec![2]);
        // ...so the next identical submission computes instead of
        // coalescing onto a ghost forever.
        assert_eq!(cache.claim(key, &g, &spec, 3), Claim::Compute);
        assert_eq!(cache.abandon(key, &g, &spec), Vec::<u64>::new());
        assert_eq!(cache.counters().entries, 0);
    }

    #[test]
    fn ready_results_are_bounded_by_node_budget() {
        // Entry capacity is ample, but the budget only fits one grid's
        // cost (nodes + edges — a ready entry pins the whole graph, not
        // just the coloring) at a time: each fulfill evicts the previous
        // result.
        let spec = JobSpec::default();
        let g1 = graph(4);
        let g2 = graph(4);
        let cache = ResultCache::new(16, g1.num_nodes() + 2 * g1.num_edges(), LONG_TTL);
        let (k1, k2) = (job_key(&g1, &spec), 1 ^ job_key(&g2, &spec));
        assert_eq!(cache.claim(k1, &g1, &spec, 1), Claim::Compute);
        cache.fulfill(k1, &g1, &spec, outcome_for(&g1));
        assert_eq!(cache.counters().entries, 1);
        assert_eq!(cache.claim(k2, &g2, &spec, 2), Claim::Compute);
        cache.fulfill(k2, &g2, &spec, outcome_for(&g2));
        // The older result was evicted to stay under the budget.
        assert_eq!(cache.counters().entries, 1);
        assert_eq!(cache.claim(k1, &g1, &spec, 3), Claim::Compute);
        assert!(matches!(cache.claim(k2, &g2, &spec, 4), Claim::Hit(_)));
    }

    #[test]
    fn ready_results_expire_after_the_ttl() {
        let cache = ResultCache::new(16, usize::MAX, Duration::from_millis(50));
        let g = graph(4);
        let spec = JobSpec::default();
        let key = job_key(&g, &spec);
        assert_eq!(cache.claim(key, &g, &spec, 1), Claim::Compute);
        cache.fulfill(key, &g, &spec, outcome_for(&g));
        // Fresh results survive an immediate sweep and serve hits.
        assert!(matches!(cache.claim(key, &g, &spec, 2), Claim::Hit(_)));
        assert_eq!(cache.counters().entries, 1);
        std::thread::sleep(Duration::from_millis(120));
        // Any cache activity sweeps: the stale result is gone and the next
        // identical submission recomputes.
        assert_eq!(cache.claim(key, &g, &spec, 3), Claim::Compute);
        let counters = cache.counters();
        assert_eq!(counters.entries, 0);
        assert_eq!(counters.expired, 1);
        assert_eq!(counters.evicted, 0, "the caps were never pressured");
        // In-flight entries never expire: the claim above still owns the
        // computation after another TTL has passed.
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(cache.claim(key, &g, &spec, 4), Claim::Coalesced);
    }

    #[test]
    fn ready_results_are_capped_fifo() {
        let cache = ResultCache::new(2, usize::MAX, LONG_TTL);
        let spec = JobSpec::default();
        let graphs: Vec<Arc<CsrGraph>> = (3..7).map(graph).collect();
        for g in &graphs {
            let key = job_key(g, &spec);
            assert_eq!(cache.claim(key, g, &spec, 0), Claim::Compute);
            cache.fulfill(key, g, &spec, outcome_for(g));
        }
        assert_eq!(cache.counters().entries, 2);
        // The two oldest were evicted and recompute; the two newest hit.
        assert_eq!(
            cache.claim(job_key(&graphs[0], &spec), &graphs[0], &spec, 9),
            Claim::Compute
        );
        assert!(matches!(
            cache.claim(job_key(&graphs[3], &spec), &graphs[3], &spec, 9),
            Claim::Hit(_)
        ));
    }
}
