//! Minimal hand-rolled JSON writing (the workspace builds without registry
//! access, so there is no serde_json; see also
//! `ampc_coloring_bench::Table::to_json`, which the job API embeds for its
//! metrics tables).

/// Escapes and quotes a string as a JSON string literal.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON array of unsigned integers.
pub fn array_u64<I: IntoIterator<Item = u64>>(items: I) -> String {
    let cells: Vec<String> = items.into_iter().map(|v| v.to_string()).collect();
    format!("[{}]", cells.join(","))
}

/// A JSON array of already-serialized values.
pub fn array_raw<I: IntoIterator<Item = String>>(items: I) -> String {
    let cells: Vec<String> = items.into_iter().collect();
    format!("[{}]", cells.join(","))
}

/// Incremental JSON object builder; every value is already serialized.
#[derive(Debug, Default)]
pub struct Object {
    fields: Vec<(String, String)>,
}

impl Object {
    /// Creates an empty object.
    pub fn new() -> Self {
        Object::default()
    }

    /// Adds a field with an already-serialized JSON value.
    pub fn raw(mut self, key: &str, value: impl Into<String>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Adds a string field (escaped).
    pub fn str(self, key: &str, value: &str) -> Self {
        let value = string(value);
        self.raw(key, value)
    }

    /// Adds an unsigned integer field.
    pub fn u64(self, key: &str, value: u64) -> Self {
        self.raw(key, value.to_string())
    }

    /// Adds a `usize` field.
    pub fn usize(self, key: &str, value: usize) -> Self {
        self.raw(key, value.to_string())
    }

    /// Adds a float field (JSON has no NaN/inf; those render as null).
    pub fn f64(self, key: &str, value: f64) -> Self {
        let rendered = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.raw(key, rendered)
    }

    /// Adds a boolean field.
    pub fn bool(self, key: &str, value: bool) -> Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    /// Serializes the object.
    pub fn finish(self) -> String {
        let fields: Vec<String> = self
            .fields
            .into_iter()
            .map(|(key, value)| format!("{}:{}", string(&key), value))
            .collect();
        format!("{{{}}}", fields.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_nests() {
        let inner = Object::new().str("msg", "a \"b\"\nc").finish();
        let outer = Object::new()
            .u64("id", 7)
            .bool("ok", true)
            .f64("x", 1.5)
            .f64("bad", f64::NAN)
            .raw("inner", inner)
            .raw("xs", array_u64([1, 2, 3]))
            .finish();
        assert_eq!(
            outer,
            "{\"id\":7,\"ok\":true,\"x\":1.5,\"bad\":null,\
             \"inner\":{\"msg\":\"a \\\"b\\\"\\nc\"},\"xs\":[1,2,3]}"
        );
    }

    #[test]
    fn arrays() {
        assert_eq!(array_u64([]), "[]");
        assert_eq!(array_raw([string("a"), "1".to_string()]), "[\"a\",1]");
    }
}
