//! Distributed data stores: the key-value storage AMPC machines communicate
//! through.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Maximum number of `u64` words a [`Key`] or [`Value`] may hold.
///
/// The AMPC model requires keys and values to consist of a *constant* number
/// of words (Section 3.1); fixing the constant at 3 is enough for every use
/// in this repository (e.g. `(tag, node, index)` keys).
pub const MAX_WORDS: usize = 3;

/// A key of at most [`MAX_WORDS`] machine words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Key {
    words: [u64; MAX_WORDS],
    len: u8,
}

/// A value of at most [`MAX_WORDS`] machine words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Value {
    words: [u64; MAX_WORDS],
    len: u8,
}

macro_rules! impl_word_tuple {
    ($name:ident) => {
        impl $name {
            /// Constructs from a single word.
            pub fn single(word: u64) -> Self {
                Self::from_words(&[word])
            }

            /// Constructs from a pair of words.
            pub fn pair(a: u64, b: u64) -> Self {
                Self::from_words(&[a, b])
            }

            /// Constructs from a triple of words.
            pub fn triple(a: u64, b: u64, c: u64) -> Self {
                Self::from_words(&[a, b, c])
            }

            /// Constructs from a slice of at most [`MAX_WORDS`] words.
            ///
            /// # Panics
            ///
            /// Panics if `words.len() > MAX_WORDS`.
            pub fn from_words(words: &[u64]) -> Self {
                assert!(
                    words.len() <= MAX_WORDS,
                    "at most {MAX_WORDS} words allowed, got {}",
                    words.len()
                );
                let mut storage = [0u64; MAX_WORDS];
                storage[..words.len()].copy_from_slice(words);
                Self {
                    words: storage,
                    len: words.len() as u8,
                }
            }

            /// The stored words.
            pub fn words(&self) -> &[u64] {
                &self.words[..self.len as usize]
            }

            /// Number of words stored.
            pub fn len(&self) -> usize {
                self.len as usize
            }

            /// Returns `true` if no words are stored.
            pub fn is_empty(&self) -> bool {
                self.len == 0
            }
        }
    };
}

impl_word_tuple!(Key);
impl_word_tuple!(Value);

/// Read access to a keyed store.
///
/// Abstracts over the plain [`DataStore`] and partitioned implementations
/// (such as the sharded store of the `ampc-runtime` crate) so that a
/// [`crate::MachineContext`] can serve reads from either. Implementations
/// must be safe to read from many machines concurrently (`Sync`), which is
/// what makes lock-free parallel round execution possible.
pub trait StoreRead: Sync {
    /// Looks up a key; `None` is the model's "empty response".
    fn read(&self, key: Key) -> Option<Value>;
}

impl StoreRead for DataStore {
    fn read(&self, key: Key) -> Option<Value> {
        self.get(key)
    }
}

/// A distributed key-value data store (`D_i` in the paper).
///
/// The store itself is a plain hash map; the *access restrictions* (which
/// round may read or write it, and with what budget) are enforced by
/// [`crate::AmpcExecutor`] / [`crate::MachineContext`], not by the store.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DataStore {
    entries: HashMap<Key, Value>,
}

impl DataStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        DataStore::default()
    }

    /// Number of key-value pairs stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the store holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a key-value pair, returning the previous value if any.
    pub fn insert(&mut self, key: Key, value: Value) -> Option<Value> {
        self.entries.insert(key, value)
    }

    /// Looks up a key. A missing key yields `None` ("empty response" in the
    /// paper's terminology).
    pub fn get(&self, key: Key) -> Option<Value> {
        self.entries.get(&key).copied()
    }

    /// Returns `true` if `key` is present.
    pub fn contains(&self, key: Key) -> bool {
        self.entries.contains_key(&key)
    }

    /// Removes a key, returning its value if present.
    pub fn remove(&mut self, key: Key) -> Option<Value> {
        self.entries.remove(&key)
    }

    /// Iterates over all key-value pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Value)> {
        self.entries.iter()
    }

    /// Total space used, in words (keys plus values), for space accounting.
    pub fn space_in_words(&self) -> usize {
        self.entries.iter().map(|(k, v)| k.len() + v.len()).sum()
    }
}

impl FromIterator<(Key, Value)> for DataStore {
    fn from_iter<T: IntoIterator<Item = (Key, Value)>>(iter: T) -> Self {
        DataStore {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<(Key, Value)> for DataStore {
    fn extend<T: IntoIterator<Item = (Key, Value)>>(&mut self, iter: T) {
        self.entries.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_and_values_round_trip_words() {
        let k = Key::triple(1, 2, 3);
        assert_eq!(k.words(), &[1, 2, 3]);
        assert_eq!(k.len(), 3);
        assert!(!k.is_empty());

        let v = Value::pair(7, 8);
        assert_eq!(v.words(), &[7, 8]);

        assert_ne!(Key::single(1), Key::pair(1, 0));
        assert_eq!(Key::from_words(&[5]), Key::single(5));
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_words_is_rejected() {
        Key::from_words(&[1, 2, 3, 4]);
    }

    #[test]
    fn store_basic_operations() {
        let mut store = DataStore::new();
        assert!(store.is_empty());
        assert_eq!(store.insert(Key::single(1), Value::single(10)), None);
        assert_eq!(
            store.insert(Key::single(1), Value::single(20)),
            Some(Value::single(10))
        );
        assert_eq!(store.get(Key::single(1)), Some(Value::single(20)));
        assert_eq!(store.get(Key::single(2)), None);
        assert!(store.contains(Key::single(1)));
        assert_eq!(store.len(), 1);
        assert_eq!(store.remove(Key::single(1)), Some(Value::single(20)));
        assert!(store.is_empty());
    }

    #[test]
    fn space_accounting_counts_words() {
        let store: DataStore = [
            (Key::single(1), Value::pair(1, 2)),
            (Key::triple(1, 2, 3), Value::single(9)),
        ]
        .into_iter()
        .collect();
        assert_eq!(store.space_in_words(), (1 + 2) + (3 + 1));
    }

    #[test]
    fn ordering_is_lexicographic_on_words() {
        assert!(Value::single(1) < Value::single(2));
        assert!(Value::pair(1, 5) < Value::pair(2, 0));
        // Shorter tuples padded with zeros but distinguished by length.
        assert!(Value::single(1) != Value::pair(1, 0));
    }
}
