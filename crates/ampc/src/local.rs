//! A synchronous LOCAL-model simulator.
//!
//! The paper's coloring algorithms (Section 6) are obtained by *simulating*
//! LOCAL-model subroutines — Arb-Linial color reduction, Kuhn–Wattenhofer
//! color reduction — inside AMPC. This module provides a small synchronous
//! message-passing simulator used to validate those subroutines in their
//! native model and to count the LOCAL rounds being simulated.

use sparse_graph::{CsrGraph, NodeId};

/// A synchronous message-passing network over the nodes of a graph.
///
/// Every node holds a state of type `S`. In one [`LocalNetwork::round`],
/// every node first produces a broadcast message of type `M` from its state
/// (sent to all neighbors), then every node updates its state from the
/// multiset of messages received from its neighbors. This captures the
/// standard LOCAL model with the simplification that a node sends the same
/// message to all neighbors, which suffices for every subroutine in this
/// repository.
///
/// # Examples
///
/// Computing, at every node, the maximum node id within distance 2:
///
/// ```
/// use ampc_model::local::LocalNetwork;
/// use sparse_graph::CsrGraph;
///
/// let graph = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
/// let mut network = LocalNetwork::new(&graph, |v| v);
/// for _ in 0..2 {
///     network.round(
///         |_, state| *state,
///         |_, state, inbox| {
///             for (_, message) in inbox {
///                 *state = (*state).max(*message);
///             }
///         },
///     );
/// }
/// assert_eq!(network.states(), &[2, 3, 3, 3]);
/// assert_eq!(network.rounds_executed(), 2);
/// ```
#[derive(Debug)]
pub struct LocalNetwork<'g, S> {
    graph: &'g CsrGraph,
    states: Vec<S>,
    rounds_executed: usize,
}

impl<'g, S> LocalNetwork<'g, S> {
    /// Creates a network where node `v` starts in state `init(v)`.
    pub fn new<F>(graph: &'g CsrGraph, mut init: F) -> Self
    where
        F: FnMut(NodeId) -> S,
    {
        let states = graph.nodes().map(&mut init).collect();
        LocalNetwork {
            graph,
            states,
            rounds_executed: 0,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &CsrGraph {
        self.graph
    }

    /// Current per-node states.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Number of synchronous rounds executed so far.
    pub fn rounds_executed(&self) -> usize {
        self.rounds_executed
    }

    /// Consumes the network and returns the final states.
    pub fn into_states(self) -> Vec<S> {
        self.states
    }

    /// Executes one synchronous round.
    ///
    /// * `send(v, &state)` produces the message node `v` broadcasts.
    /// * `receive(v, &mut state, inbox)` updates `v`'s state given the
    ///   messages received from its neighbors as `(neighbor, message)` pairs
    ///   sorted by neighbor id.
    pub fn round<M, Send, Receive>(&mut self, send: Send, mut receive: Receive)
    where
        M: Clone,
        Send: Fn(NodeId, &S) -> M,
        Receive: FnMut(NodeId, &mut S, &[(NodeId, M)]),
    {
        let outgoing: Vec<M> = self
            .states
            .iter()
            .enumerate()
            .map(|(v, state)| send(v, state))
            .collect();

        let mut inbox = Vec::new();
        for v in self.graph.nodes() {
            inbox.clear();
            for &w in self.graph.neighbors(v) {
                inbox.push((w, outgoing[w].clone()));
            }
            receive(v, &mut self.states[v], &inbox);
        }
        self.rounds_executed += 1;
    }

    /// Runs rounds until `halted` returns `true` for all states or
    /// `max_rounds` is reached. Returns the number of rounds executed inside
    /// this call.
    pub fn run_until<M, Send, Receive, Halt>(
        &mut self,
        max_rounds: usize,
        send: Send,
        mut receive: Receive,
        halted: Halt,
    ) -> usize
    where
        M: Clone,
        Send: Fn(NodeId, &S) -> M,
        Receive: FnMut(NodeId, &mut S, &[(NodeId, M)]),
        Halt: Fn(&S) -> bool,
    {
        let mut executed = 0;
        while executed < max_rounds && !self.states.iter().all(&halted) {
            self.round(&send, &mut receive);
            executed += 1;
        }
        executed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flood_maximum_id() {
        let graph = CsrGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut network = LocalNetwork::new(&graph, |v| v);
        // After k rounds every node knows the max id within distance k.
        for _ in 0..4 {
            network.round(
                |_, s| *s,
                |_, s, inbox| {
                    for (_, m) in inbox {
                        *s = (*s).max(*m);
                    }
                },
            );
        }
        assert!(network.states().iter().all(|&s| s == 4));
        assert_eq!(network.rounds_executed(), 4);
    }

    #[test]
    fn inbox_is_sorted_by_neighbor_id() {
        let graph = CsrGraph::from_edges(4, [(2, 0), (2, 3), (2, 1)]);
        let mut network = LocalNetwork::new(&graph, |_| Vec::<NodeId>::new());
        network.round(
            |v, _| v,
            |v, state, inbox| {
                if v == 2 {
                    *state = inbox.iter().map(|&(w, _)| w).collect();
                }
            },
        );
        assert_eq!(network.states()[2], vec![0, 1, 3]);
    }

    #[test]
    fn run_until_halts_early() {
        let graph = CsrGraph::from_edges(3, [(0, 1), (1, 2)]);
        let mut network = LocalNetwork::new(&graph, |v| v);
        let executed = network.run_until(
            100,
            |_, s| *s,
            |_, s, inbox| {
                for (_, m) in inbox {
                    *s = (*s).max(*m);
                }
            },
            |&s| s == 2,
        );
        // Node 0 learns about node 2 after two rounds.
        assert_eq!(executed, 2);
        assert_eq!(network.states(), &[2, 2, 2]);
    }

    #[test]
    fn isolated_nodes_receive_no_messages() {
        let graph = CsrGraph::empty(3);
        let mut network = LocalNetwork::new(&graph, |_| 0usize);
        network.round(
            |_, _| 1usize,
            |_, state, inbox| {
                *state = inbox.len();
            },
        );
        assert_eq!(network.states(), &[0, 0, 0]);
    }
}
