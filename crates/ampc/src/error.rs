//! Error type shared by all model simulators.

use std::fmt;

/// Errors raised when an algorithm violates the resource constraints of the
/// simulated model or uses the simulator incorrectly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A machine exceeded its per-round read (query) budget.
    ReadBudgetExceeded {
        /// Machine that exceeded its budget.
        machine: usize,
        /// The budget that was in force.
        budget: usize,
    },
    /// A machine exceeded its per-round write budget.
    WriteBudgetExceeded {
        /// Machine that exceeded its budget.
        machine: usize,
        /// The budget that was in force.
        budget: usize,
    },
    /// A machine exceeded its local space while accumulating state.
    LocalSpaceExceeded {
        /// Machine that exceeded its space.
        machine: usize,
        /// Local space (in words) that was in force.
        space: usize,
    },
    /// An LCA exceeded its per-node query budget.
    QueryBudgetExceeded {
        /// The budget that was in force.
        budget: usize,
    },
    /// Two machines wrote different values to the same key under
    /// [`crate::ConflictPolicy::Error`].
    WriteConflict {
        /// Human-readable description of the conflicting key.
        key: String,
    },
    /// The algorithm driver misused the simulator (e.g. inconsistent machine
    /// counts); the message explains the problem.
    InvalidUsage(
        /// Description of the misuse.
        String,
    ),
    /// A round panicked (in a machine body or the merge phase) and every
    /// permitted retry was exhausted. Panics from injected faults are
    /// always retried before this surfaces; a real panic is reported with
    /// whatever payload detail could be extracted.
    RoundPanicked {
        /// Round (0-based, per backend) that kept panicking.
        round: usize,
        /// Best-effort panic payload description.
        detail: String,
    },
    /// A round overran its configured wall-clock deadline on every
    /// permitted attempt.
    RoundDeadlineExceeded {
        /// Round (0-based, per backend) that kept overrunning.
        round: usize,
        /// The deadline that was in force, in milliseconds.
        deadline_ms: u64,
        /// Number of attempts made (initial run + retries).
        attempts: u32,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ReadBudgetExceeded { machine, budget } => {
                write!(
                    f,
                    "machine {machine} exceeded its read budget of {budget} queries"
                )
            }
            ModelError::WriteBudgetExceeded { machine, budget } => {
                write!(
                    f,
                    "machine {machine} exceeded its write budget of {budget} writes"
                )
            }
            ModelError::LocalSpaceExceeded { machine, space } => {
                write!(
                    f,
                    "machine {machine} exceeded its local space of {space} words"
                )
            }
            ModelError::QueryBudgetExceeded { budget } => {
                write!(f, "LCA exceeded its query budget of {budget} queries")
            }
            ModelError::WriteConflict { key } => {
                write!(f, "conflicting writes to key {key}")
            }
            ModelError::InvalidUsage(message) => write!(f, "invalid simulator usage: {message}"),
            ModelError::RoundPanicked { round, detail } => {
                write!(
                    f,
                    "round {round} panicked after exhausting retries: {detail}"
                )
            }
            ModelError::RoundDeadlineExceeded {
                round,
                deadline_ms,
                attempts,
            } => {
                write!(
                    f,
                    "round {round} exceeded its {deadline_ms} ms deadline on all {attempts} attempts"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let err = ModelError::ReadBudgetExceeded {
            machine: 3,
            budget: 10,
        };
        assert!(err.to_string().contains("machine 3"));
        assert!(err.to_string().contains("10"));

        let err = ModelError::QueryBudgetExceeded { budget: 64 };
        assert!(err.to_string().contains("64"));

        let err = ModelError::InvalidUsage("bad".into());
        assert!(err.to_string().contains("bad"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            ModelError::QueryBudgetExceeded { budget: 1 },
            ModelError::QueryBudgetExceeded { budget: 1 }
        );
        assert_ne!(
            ModelError::QueryBudgetExceeded { budget: 1 },
            ModelError::QueryBudgetExceeded { budget: 2 }
        );
    }
}
