//! The LCA (Local Computation Algorithm) query oracle.

use std::cell::Cell;

use sparse_graph::{CsrGraph, NodeId};

use crate::error::ModelError;

/// Statistics of an LCA execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LcaStats {
    /// Number of queries issued.
    pub queries: usize,
    /// The budget in force (`usize::MAX` if unbounded).
    pub budget: usize,
}

/// Adjacency-list oracle of the LCA model [RTVX11]: an algorithm may query
/// the degree of a node and the `i`-th entry of its adjacency list, and every
/// such probe is counted.
///
/// The oracle is the access path of the coin-dropping LCA (Section 4); the
/// query bound of Lemma 4.6/4.7 (`x⁶` queries per queried node) is *enforced*
/// when a budget is set, so tests and benchmarks observe violations instead
/// of silently ignoring them.
///
/// # Examples
///
/// ```
/// use ampc_model::LcaOracle;
/// use sparse_graph::CsrGraph;
///
/// let graph = CsrGraph::from_edges(3, [(0, 1), (1, 2)]);
/// let oracle = LcaOracle::new(&graph);
/// assert_eq!(oracle.degree(1)?, 2);
/// assert_eq!(oracle.neighbor(1, 0)?, Some(0));
/// assert_eq!(oracle.queries_used(), 2);
/// # Ok::<(), ampc_model::ModelError>(())
/// ```
#[derive(Debug)]
pub struct LcaOracle<'g> {
    graph: &'g CsrGraph,
    queries: Cell<usize>,
    budget: usize,
}

impl<'g> LcaOracle<'g> {
    /// Creates an oracle without a query budget.
    pub fn new(graph: &'g CsrGraph) -> Self {
        LcaOracle {
            graph,
            queries: Cell::new(0),
            budget: usize::MAX,
        }
    }

    /// Creates an oracle that errors once more than `budget` queries are
    /// issued.
    pub fn with_budget(graph: &'g CsrGraph, budget: usize) -> Self {
        LcaOracle {
            graph,
            queries: Cell::new(0),
            budget,
        }
    }

    /// Number of nodes of the underlying graph (global knowledge of `n` is
    /// standard in the LCA model).
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Queries the degree of `v`.
    ///
    /// # Errors
    ///
    /// [`ModelError::QueryBudgetExceeded`] once the budget is exhausted.
    pub fn degree(&self, v: NodeId) -> Result<usize, ModelError> {
        self.charge()?;
        Ok(self.graph.degree(v))
    }

    /// Queries the `i`-th neighbor of `v`; `Ok(None)` if `i >= degree(v)`.
    ///
    /// # Errors
    ///
    /// [`ModelError::QueryBudgetExceeded`] once the budget is exhausted.
    pub fn neighbor(&self, v: NodeId, i: usize) -> Result<Option<NodeId>, ModelError> {
        self.charge()?;
        Ok(self.graph.neighbor(v, i))
    }

    /// Queries the full adjacency list of `v`, charging `degree(v)` queries
    /// (one per adjacency-list entry) plus one for the degree probe.
    ///
    /// # Errors
    ///
    /// [`ModelError::QueryBudgetExceeded`] once the budget is exhausted.
    pub fn neighbors(&self, v: NodeId) -> Result<Vec<NodeId>, ModelError> {
        let degree = self.degree(v)?;
        self.charge_many(degree)?;
        Ok(self.graph.neighbors(v).to_vec())
    }

    /// Number of queries issued so far.
    pub fn queries_used(&self) -> usize {
        self.queries.get()
    }

    /// Remaining budget (or `usize::MAX` if unbounded).
    pub fn queries_remaining(&self) -> usize {
        self.budget.saturating_sub(self.queries.get())
    }

    /// Snapshot of the statistics.
    pub fn stats(&self) -> LcaStats {
        LcaStats {
            queries: self.queries.get(),
            budget: self.budget,
        }
    }

    /// Resets the query counter (used between independent per-node
    /// executions sharing one oracle).
    pub fn reset_queries(&self) {
        self.queries.set(0);
    }

    fn charge(&self) -> Result<(), ModelError> {
        self.charge_many(1)
    }

    fn charge_many(&self, amount: usize) -> Result<(), ModelError> {
        let used = self.queries.get();
        if used + amount > self.budget {
            return Err(ModelError::QueryBudgetExceeded {
                budget: self.budget,
            });
        }
        self.queries.set(used + amount);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star() -> CsrGraph {
        CsrGraph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)])
    }

    #[test]
    fn queries_are_counted() {
        let g = star();
        let oracle = LcaOracle::new(&g);
        assert_eq!(oracle.degree(0).unwrap(), 4);
        assert_eq!(oracle.neighbor(0, 2).unwrap(), Some(3));
        assert_eq!(oracle.neighbor(0, 9).unwrap(), None);
        assert_eq!(oracle.queries_used(), 3);
        let all = oracle.neighbors(2).unwrap();
        assert_eq!(all, vec![0]);
        assert_eq!(oracle.queries_used(), 3 + 1 + 1);
    }

    #[test]
    fn budget_is_enforced() {
        let g = star();
        let oracle = LcaOracle::with_budget(&g, 2);
        assert!(oracle.degree(0).is_ok());
        assert!(oracle.degree(1).is_ok());
        assert_eq!(
            oracle.degree(2).unwrap_err(),
            ModelError::QueryBudgetExceeded { budget: 2 }
        );
        // The failed query is not charged.
        assert_eq!(oracle.queries_used(), 2);
        assert_eq!(oracle.queries_remaining(), 0);
    }

    #[test]
    fn neighbors_respects_budget_atomically() {
        let g = star();
        let oracle = LcaOracle::with_budget(&g, 3);
        // degree probe (1) + 4 adjacency probes > 3.
        assert!(oracle.neighbors(0).is_err());
    }

    #[test]
    fn reset_allows_reuse() {
        let g = star();
        let oracle = LcaOracle::with_budget(&g, 1);
        assert!(oracle.degree(0).is_ok());
        oracle.reset_queries();
        assert!(oracle.degree(1).is_ok());
        assert_eq!(oracle.stats().queries, 1);
        assert_eq!(oracle.stats().budget, 1);
    }
}
