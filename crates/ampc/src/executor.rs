//! The AMPC round executor and per-machine access contexts.

use std::time::Instant;

use crate::config::AmpcConfig;
use crate::dds::{DataStore, Key, StoreRead, Value};
use crate::error::ModelError;
use crate::metrics::{AmpcMetrics, RoundReport, RoundRuntimeStats};

/// How the executor resolves two machines writing to the same key in the
/// same round.
///
/// The AMPC model itself allows duplicate keys (they become `(x, 1) … (x, k)`
/// entries); the algorithms in this repository instead always reduce
/// duplicates with an associative rule, most prominently the *minimum* merge
/// of Remark 4.8 ("merge all β-partitions given as proofs via a global
/// minimum function").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictPolicy {
    /// Keep the smallest value (lexicographic on words).
    KeepMin,
    /// Keep the largest value (lexicographic on words).
    KeepMax,
    /// Keep the value written by the machine processed first (deterministic:
    /// machines are processed in increasing id order).
    KeepFirst,
    /// Treat conflicting writes (different values to the same key) as an
    /// error.
    Error,
}

impl ConflictPolicy {
    /// Resolves two writes to the same key within one round.
    ///
    /// `existing` must be the value written by the earlier machine (in
    /// increasing machine-id / write order), which is what makes
    /// [`ConflictPolicy::KeepFirst`] deterministic. Backend implementations
    /// (the sequential executor here and the parallel runtime) share this
    /// single merge rule, so their stores stay bit-identical.
    ///
    /// # Errors
    ///
    /// [`ModelError::WriteConflict`] under [`ConflictPolicy::Error`] when the
    /// values differ.
    pub fn resolve(self, key: &Key, existing: Value, incoming: Value) -> Result<Value, ModelError> {
        Ok(match self {
            ConflictPolicy::KeepMin => existing.min(incoming),
            ConflictPolicy::KeepMax => existing.max(incoming),
            ConflictPolicy::KeepFirst => existing,
            ConflictPolicy::Error => {
                if existing == incoming {
                    existing
                } else {
                    return Err(ModelError::WriteConflict {
                        key: format!("{:?}", key.words()),
                    });
                }
            }
        })
    }
}

/// The access context handed to a machine for one AMPC round.
///
/// Reads go against the *previous* round's data store; writes are buffered
/// and only become visible in the *next* round's store — exactly the
/// semantics of Section 3.1. Reads within the round may depend on values
/// read earlier in the same round (adaptivity), which is the defining AMPC
/// capability.
pub struct MachineContext<'a> {
    machine: usize,
    input: &'a dyn StoreRead,
    writes: Vec<(Key, Value)>,
    reads_used: usize,
    read_budget: usize,
    write_budget: usize,
}

impl std::fmt::Debug for MachineContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MachineContext")
            .field("machine", &self.machine)
            .field("reads_used", &self.reads_used)
            .field("writes", &self.writes.len())
            .field("read_budget", &self.read_budget)
            .field("write_budget", &self.write_budget)
            .finish_non_exhaustive()
    }
}

impl<'a> MachineContext<'a> {
    /// Creates the access context one machine gets for one round.
    ///
    /// Public so that alternative [`crate::AmpcExecutor`]-like backends (the
    /// parallel runtime crate) can drive machines with exactly the same
    /// budget enforcement as the sequential executor; algorithm code should
    /// never construct contexts itself.
    pub fn for_round(
        machine: usize,
        input: &'a dyn StoreRead,
        read_budget: usize,
        write_budget: usize,
    ) -> Self {
        MachineContext {
            machine,
            input,
            writes: Vec::new(),
            reads_used: 0,
            read_budget,
            write_budget,
        }
    }

    /// The id of the machine this context belongs to.
    pub fn machine(&self) -> usize {
        self.machine
    }

    /// Reads a key from the previous round's store, counting one query.
    ///
    /// Returns `Ok(None)` for a missing key (the model's "empty response").
    ///
    /// # Errors
    ///
    /// [`ModelError::ReadBudgetExceeded`] if the machine already used its
    /// `O(S)` read budget this round.
    pub fn read(&mut self, key: Key) -> Result<Option<Value>, ModelError> {
        if self.reads_used >= self.read_budget {
            return Err(ModelError::ReadBudgetExceeded {
                machine: self.machine,
                budget: self.read_budget,
            });
        }
        self.reads_used += 1;
        Ok(self.input.read(key))
    }

    /// Records `reads` queries issued through a side channel (e.g. an
    /// [`crate::LcaOracle`] exploring the input graph) so they appear in the
    /// round metrics, without enforcing the budget — mirroring the
    /// accounting-only role of [`RoundReport::from_measurements`] that
    /// algorithm drivers used before the backend abstraction existed.
    pub fn note_reads(&mut self, reads: usize) {
        self.reads_used += reads;
    }

    /// Buffers a write into the next round's store, counting one write.
    ///
    /// # Errors
    ///
    /// [`ModelError::WriteBudgetExceeded`] if the machine already used its
    /// `O(S)` write budget this round.
    pub fn write(&mut self, key: Key, value: Value) -> Result<(), ModelError> {
        if self.writes.len() >= self.write_budget {
            return Err(ModelError::WriteBudgetExceeded {
                machine: self.machine,
                budget: self.write_budget,
            });
        }
        self.writes.push((key, value));
        Ok(())
    }

    /// Number of reads issued so far in this round.
    pub fn reads_used(&self) -> usize {
        self.reads_used
    }

    /// Number of writes issued so far in this round.
    pub fn writes_used(&self) -> usize {
        self.writes.len()
    }

    /// Remaining read budget (zero when side-channel accounting via
    /// [`MachineContext::note_reads`] exceeded it).
    pub fn reads_remaining(&self) -> usize {
        self.read_budget.saturating_sub(self.reads_used)
    }

    /// Consumes the context and returns its buffered writes, in write order.
    ///
    /// For backend implementations merging machine outputs into the next
    /// round's store.
    pub fn into_writes(self) -> Vec<(Key, Value)> {
        self.writes
    }
}

/// Executes AMPC rounds against a sequence of data stores and records
/// resource metrics.
///
/// Machines are simulated sequentially (in increasing machine id) but each
/// machine only sees the previous round's store, so the simulation is
/// semantically equivalent to a parallel execution.
#[derive(Debug)]
pub struct AmpcExecutor {
    config: AmpcConfig,
    store: DataStore,
    metrics: AmpcMetrics,
}

impl AmpcExecutor {
    /// Creates an executor whose round 0 input store is `initial`.
    pub fn new(config: AmpcConfig, initial: DataStore) -> Self {
        AmpcExecutor {
            config,
            store: initial,
            metrics: AmpcMetrics::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &AmpcConfig {
        &self.config
    }

    /// The current (most recently produced) data store.
    pub fn store(&self) -> &DataStore {
        &self.store
    }

    /// Mutable access to the current store, for loading additional input
    /// before the first round.
    pub fn store_mut(&mut self) -> &mut DataStore {
        &mut self.store
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &AmpcMetrics {
        &self.metrics
    }

    /// Mutable metrics access, for backends that amend the executor's
    /// records with host measurements taken outside the executor (see
    /// [`AmpcMetrics::last_runtime_mut`]).
    pub fn metrics_mut(&mut self) -> &mut AmpcMetrics {
        &mut self.metrics
    }

    /// Consumes the executor and returns the final store and metrics.
    pub fn into_parts(self) -> (DataStore, AmpcMetrics) {
        (self.store, self.metrics)
    }

    /// Runs one AMPC round with `machines` machines.
    ///
    /// The closure is invoked once per machine with a [`MachineContext`]
    /// enforcing the read/write budgets from the configuration. After all
    /// machines ran, the buffered writes are merged into the next store
    /// according to `policy` and the previous store is replaced.
    ///
    /// Keys **not** written in this round are dropped, mirroring the model
    /// where `D_{i+1}` contains exactly what round `i+1` machines wrote; use
    /// [`AmpcExecutor::round_carrying_forward`] to keep the old contents.
    ///
    /// # Errors
    ///
    /// Propagates budget violations from machines and conflicting writes
    /// under [`ConflictPolicy::Error`].
    pub fn round<F>(
        &mut self,
        machines: usize,
        policy: ConflictPolicy,
        mut body: F,
    ) -> Result<RoundReport, ModelError>
    where
        F: FnMut(usize, &mut MachineContext<'_>) -> Result<(), ModelError>,
    {
        self.round_inner(machines, policy, false, &mut body)
    }

    /// Like [`AmpcExecutor::round`], but entries of the previous store that
    /// no machine overwrote are carried forward into the next store.
    ///
    /// This models the common pattern of machines re-writing only the keys
    /// they own while the rest of the data (e.g. the static input graph) is
    /// ported forward by the DDS-handling machines, as the proof of
    /// Theorem 1.2 describes.
    ///
    /// # Errors
    ///
    /// Same as [`AmpcExecutor::round`].
    pub fn round_carrying_forward<F>(
        &mut self,
        machines: usize,
        policy: ConflictPolicy,
        mut body: F,
    ) -> Result<RoundReport, ModelError>
    where
        F: FnMut(usize, &mut MachineContext<'_>) -> Result<(), ModelError>,
    {
        self.round_inner(machines, policy, true, &mut body)
    }

    fn round_inner(
        &mut self,
        machines: usize,
        policy: ConflictPolicy,
        carry_forward: bool,
        body: &mut dyn FnMut(usize, &mut MachineContext<'_>) -> Result<(), ModelError>,
    ) -> Result<RoundReport, ModelError> {
        let started = Instant::now();
        let read_budget = self.config.read_budget();
        let write_budget = self.config.write_budget();

        let mut next = if carry_forward {
            self.store.clone()
        } else {
            DataStore::new()
        };
        let mut written_this_round: std::collections::HashMap<Key, Value> =
            std::collections::HashMap::new();
        let mut conflict_merges = 0usize;

        let mut report = RoundReport::new(self.metrics.num_rounds(), machines);

        for machine in 0..machines {
            let mut ctx =
                MachineContext::for_round(machine, &self.store, read_budget, write_budget);
            body(machine, &mut ctx)?;
            report.record_machine(ctx.reads_used, ctx.writes.len());

            for (key, value) in ctx.writes.drain(..) {
                match written_this_round.entry(key) {
                    std::collections::hash_map::Entry::Vacant(entry) => {
                        entry.insert(value);
                    }
                    std::collections::hash_map::Entry::Occupied(mut entry) => {
                        conflict_merges += 1;
                        let resolved = policy.resolve(&key, *entry.get(), value)?;
                        entry.insert(resolved);
                    }
                }
            }
        }

        for (key, value) in written_this_round {
            next.insert(key, value);
        }

        report.finish(next.space_in_words());
        self.metrics.push_round(report.clone());
        self.metrics.record_runtime(RoundRuntimeStats {
            wall_clock_nanos: started.elapsed().as_nanos() as u64,
            conflict_merges,
            ..RoundRuntimeStats::default()
        });
        self.store = next;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> AmpcConfig {
        // input size 16, delta 0.5 -> budget 4 reads/writes per machine.
        AmpcConfig::for_input_size(16, 0.5)
    }

    fn store_with(values: &[(u64, u64)]) -> DataStore {
        values
            .iter()
            .map(|&(k, v)| (Key::single(k), Value::single(v)))
            .collect()
    }

    #[test]
    fn round_reads_previous_store_and_writes_next() {
        let mut exec = AmpcExecutor::new(small_config(), store_with(&[(0, 5), (1, 6)]));
        exec.round(2, ConflictPolicy::Error, |machine, ctx| {
            let value = ctx.read(Key::single(machine as u64))?.unwrap();
            ctx.write(
                Key::single(machine as u64),
                Value::single(value.words()[0] + 1),
            )
        })
        .unwrap();
        assert_eq!(exec.store().get(Key::single(0)), Some(Value::single(6)));
        assert_eq!(exec.store().get(Key::single(1)), Some(Value::single(7)));
        assert_eq!(exec.metrics().num_rounds(), 1);
    }

    #[test]
    fn writes_are_not_visible_within_the_same_round() {
        let mut exec = AmpcExecutor::new(small_config(), store_with(&[(0, 1)]));
        exec.round(2, ConflictPolicy::Error, |machine, ctx| {
            if machine == 0 {
                ctx.write(Key::single(9), Value::single(99))?;
            } else {
                // Machine 1 must not see machine 0's write from this round.
                assert_eq!(ctx.read(Key::single(9))?, None);
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(exec.store().get(Key::single(9)), Some(Value::single(99)));
    }

    #[test]
    fn unwritten_keys_are_dropped_unless_carried_forward() {
        let mut exec = AmpcExecutor::new(small_config(), store_with(&[(0, 1), (1, 2)]));
        exec.round(1, ConflictPolicy::Error, |_, ctx| {
            ctx.write(Key::single(0), Value::single(10))
        })
        .unwrap();
        assert_eq!(exec.store().get(Key::single(1)), None);

        let mut exec = AmpcExecutor::new(small_config(), store_with(&[(0, 1), (1, 2)]));
        exec.round_carrying_forward(1, ConflictPolicy::Error, |_, ctx| {
            ctx.write(Key::single(0), Value::single(10))
        })
        .unwrap();
        assert_eq!(exec.store().get(Key::single(0)), Some(Value::single(10)));
        assert_eq!(exec.store().get(Key::single(1)), Some(Value::single(2)));
    }

    #[test]
    fn read_budget_is_enforced() {
        let mut exec = AmpcExecutor::new(small_config(), DataStore::new());
        let err = exec
            .round(1, ConflictPolicy::Error, |_, ctx| {
                for i in 0..100 {
                    ctx.read(Key::single(i))?;
                }
                Ok(())
            })
            .unwrap_err();
        assert_eq!(
            err,
            ModelError::ReadBudgetExceeded {
                machine: 0,
                budget: 4
            }
        );
    }

    #[test]
    fn write_budget_is_enforced() {
        let mut exec = AmpcExecutor::new(small_config(), DataStore::new());
        let err = exec
            .round(1, ConflictPolicy::Error, |_, ctx| {
                for i in 0..100 {
                    ctx.write(Key::single(i), Value::single(i))?;
                }
                Ok(())
            })
            .unwrap_err();
        assert_eq!(
            err,
            ModelError::WriteBudgetExceeded {
                machine: 0,
                budget: 4
            }
        );
    }

    #[test]
    fn conflict_policies_resolve_duplicate_writes() {
        for (policy, expected) in [
            (ConflictPolicy::KeepMin, 3u64),
            (ConflictPolicy::KeepMax, 8u64),
            (ConflictPolicy::KeepFirst, 8u64),
        ] {
            let mut exec = AmpcExecutor::new(small_config(), DataStore::new());
            exec.round(2, policy, |machine, ctx| {
                let value = if machine == 0 { 8 } else { 3 };
                ctx.write(Key::single(0), Value::single(value))
            })
            .unwrap();
            assert_eq!(
                exec.store().get(Key::single(0)),
                Some(Value::single(expected)),
                "policy {policy:?}"
            );
        }

        let mut exec = AmpcExecutor::new(small_config(), DataStore::new());
        let err = exec
            .round(2, ConflictPolicy::Error, |machine, ctx| {
                ctx.write(Key::single(0), Value::single(machine as u64))
            })
            .unwrap_err();
        assert!(matches!(err, ModelError::WriteConflict { .. }));

        // Identical duplicate writes are fine even under Error.
        let mut exec = AmpcExecutor::new(small_config(), DataStore::new());
        exec.round(2, ConflictPolicy::Error, |_, ctx| {
            ctx.write(Key::single(0), Value::single(7))
        })
        .unwrap();
        assert_eq!(exec.store().get(Key::single(0)), Some(Value::single(7)));
    }

    #[test]
    fn metrics_track_per_round_maxima() {
        let mut exec = AmpcExecutor::new(small_config(), store_with(&[(0, 1), (1, 1), (2, 1)]));
        exec.round(3, ConflictPolicy::Error, |machine, ctx| {
            for i in 0..=machine as u64 {
                ctx.read(Key::single(i))?;
            }
            ctx.write(Key::single(machine as u64), Value::single(1))
        })
        .unwrap();
        let report = &exec.metrics().rounds()[0];
        assert_eq!(report.max_reads, 3);
        assert_eq!(report.total_reads, 1 + 2 + 3);
        assert_eq!(report.max_writes, 1);
        assert_eq!(report.total_writes, 3);
        assert_eq!(report.machines, 3);
    }
}
