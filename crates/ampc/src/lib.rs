//! # ampc-model
//!
//! Simulation runtime for the models of parallel computation used by
//! *Adaptive Massively Parallel Coloring in Sparse Graphs* (PODC 2024):
//!
//! * **AMPC** (Adaptive Massively Parallel Computation, Section 3.1 of the
//!   paper): machines with `S = O(nᵟ)` words of local space communicating
//!   through distributed key-value data stores (DDS). Within a round a
//!   machine may issue `O(S)` *adaptive* reads against the previous round's
//!   store and `O(S)` writes into the next one. Implemented by
//!   [`AmpcExecutor`], [`DataStore`] and [`MachineContext`].
//! * **MPC** (low-space Massively Parallel Computation): the non-adaptive
//!   special case used by Theorem 1.5; [`mpc`] provides broadcast-tree
//!   aggregation and round accounting.
//! * **LCA** (Local Computation Algorithms): a per-node adjacency-list
//!   oracle with query counting, implemented by [`LcaOracle`].
//! * **LOCAL**: a synchronous message-passing simulator used to validate the
//!   subroutines the AMPC algorithms simulate, implemented by
//!   [`local::LocalNetwork`].
//!
//! The simulator's job is to *enforce and report* the complexity measures the
//! paper's theorems are about — rounds, local space, queries per machine,
//! total communication — while running the actual deterministic algorithms.
//!
//! ```
//! use ampc_model::{AmpcConfig, AmpcExecutor, ConflictPolicy, DataStore, Key, Value};
//!
//! // Double every value stored in the input DDS, one machine per key.
//! let mut input = DataStore::new();
//! for i in 0..8u64 {
//!     input.insert(Key::single(i), Value::single(i));
//! }
//! let config = AmpcConfig::for_input_size(8, 0.5);
//! let mut executor = AmpcExecutor::new(config, input);
//! executor
//!     .round(8, ConflictPolicy::Error, |machine, ctx| {
//!         let key = Key::single(machine as u64);
//!         if let Some(value) = ctx.read(key)? {
//!             ctx.write(key, Value::single(value.words()[0] * 2))?;
//!         }
//!         Ok(())
//!     })
//!     .unwrap();
//! assert_eq!(
//!     executor.store().get(Key::single(3)).unwrap().words()[0],
//!     6
//! );
//! assert_eq!(executor.metrics().num_rounds(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod dds;
mod error;
mod executor;
mod graph_store;
mod lca;
mod metrics;

pub mod local;
pub mod mpc;

pub use config::AmpcConfig;
pub use dds::{DataStore, Key, StoreRead, Value, MAX_WORDS};
pub use error::ModelError;
pub use executor::{AmpcExecutor, ConflictPolicy, MachineContext};
pub use graph_store::GraphStore;
pub use lca::{LcaOracle, LcaStats};
pub use metrics::{AmpcMetrics, RoundReport, RoundRuntimeStats};
