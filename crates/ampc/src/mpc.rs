//! Low-space MPC primitives: broadcast-tree aggregation and round
//! accounting.
//!
//! Theorem 1.5 of the paper is an **MPC** (non-adaptive) algorithm. Its
//! building blocks are (i) aggregating a sum/minimum over all machines
//! through an `n^{δ/2}`-ary broadcast tree in `O(1/δ)` rounds and (ii)
//! constant-round deterministic sorting. This module provides those
//! primitives together with a round-cost tracker so the simulated algorithm
//! reports the same round complexity the theorem claims.

use serde::{Deserialize, Serialize};

/// Resource parameters of a simulated MPC deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MpcConfig {
    /// Input size `N` (number of words distributed over the machines).
    pub input_size: usize,
    /// The local-space exponent `δ`.
    pub delta: f64,
}

impl MpcConfig {
    /// Creates a configuration for input size `input_size` and exponent
    /// `delta`.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is not in `(0, 1]`.
    pub fn new(input_size: usize, delta: f64) -> Self {
        assert!(delta > 0.0 && delta <= 1.0, "delta must lie in (0, 1]");
        MpcConfig { input_size, delta }
    }

    /// Local space `S = ⌈N^δ⌉` in words (at least 2, so a broadcast tree has
    /// fan-out at least 2).
    pub fn local_space(&self) -> usize {
        ((self.input_size.max(2) as f64).powf(self.delta).ceil() as usize).max(2)
    }

    /// Fan-out of the broadcast tree (`n^{δ/2}`, at least 2).
    pub fn tree_fanout(&self) -> usize {
        ((self.input_size.max(2) as f64)
            .powf(self.delta / 2.0)
            .ceil() as usize)
            .max(2)
    }

    /// Depth of a broadcast tree over `leaves` leaves, i.e. the number of
    /// MPC rounds one aggregation takes (at least 1).
    pub fn aggregation_rounds(&self, leaves: usize) -> usize {
        tree_depth(leaves, self.tree_fanout())
    }

    /// Round cost of one constant-round deterministic MPC sort
    /// ([Goo99, GSZ11]); modeled as `⌈1/δ⌉` rounds.
    pub fn sort_rounds(&self) -> usize {
        (1.0 / self.delta).ceil() as usize
    }
}

/// Depth of a `fanout`-ary aggregation tree over `leaves` leaves.
///
/// ```
/// assert_eq!(ampc_model::mpc::tree_depth(1, 4), 1);
/// assert_eq!(ampc_model::mpc::tree_depth(16, 4), 2);
/// assert_eq!(ampc_model::mpc::tree_depth(17, 4), 3);
/// ```
pub fn tree_depth(leaves: usize, fanout: usize) -> usize {
    assert!(fanout >= 2, "fanout must be at least 2");
    if leaves <= 1 {
        return 1;
    }
    let mut depth = 0;
    let mut remaining = leaves;
    while remaining > 1 {
        remaining = remaining.div_ceil(fanout);
        depth += 1;
    }
    depth
}

/// Aggregates `values` with the associative operation `combine` through a
/// `fanout`-ary tree, returning the result and the number of tree levels
/// (MPC rounds) used.
///
/// Returns `None` for an empty input.
///
/// ```
/// let (sum, rounds) = ampc_model::mpc::tree_aggregate(&[1u64, 2, 3, 4, 5], 2, |a, b| a + b).unwrap();
/// assert_eq!(sum, 15);
/// assert_eq!(rounds, 3);
/// ```
pub fn tree_aggregate<T, F>(values: &[T], fanout: usize, combine: F) -> Option<(T, usize)>
where
    T: Clone,
    F: Fn(T, T) -> T,
{
    assert!(fanout >= 2, "fanout must be at least 2");
    if values.is_empty() {
        return None;
    }
    let mut level: Vec<T> = values.to_vec();
    let mut rounds = 0;
    while level.len() > 1 {
        level = level
            .chunks(fanout)
            .map(|chunk| {
                let mut iter = chunk.iter().cloned();
                let first = iter.next().expect("chunk is non-empty");
                iter.fold(first, &combine)
            })
            .collect();
        rounds += 1;
    }
    Some((
        level.into_iter().next().expect("single root"),
        rounds.max(1),
    ))
}

/// Accumulates the MPC round cost of a simulated algorithm.
///
/// The algorithms in this repository perform the actual computation directly
/// (single-threaded) but charge every communication primitive to a tracker
/// so the reported round complexity matches the model analysis.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MpcCostTracker {
    rounds: usize,
    aggregations: usize,
    sorts: usize,
}

impl MpcCostTracker {
    /// A fresh tracker with zero cost.
    pub fn new() -> Self {
        MpcCostTracker::default()
    }

    /// Total MPC rounds charged so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Number of tree aggregations charged.
    pub fn aggregations(&self) -> usize {
        self.aggregations
    }

    /// Number of sorts charged.
    pub fn sorts(&self) -> usize {
        self.sorts
    }

    /// Charges a fixed number of rounds.
    pub fn charge_rounds(&mut self, rounds: usize) {
        self.rounds += rounds;
    }

    /// Charges one broadcast-tree aggregation over `leaves` leaves.
    pub fn charge_aggregation(&mut self, config: &MpcConfig, leaves: usize) {
        self.aggregations += 1;
        self.rounds += config.aggregation_rounds(leaves);
    }

    /// Charges one deterministic sort.
    pub fn charge_sort(&mut self, config: &MpcConfig) {
        self.sorts += 1;
        self.rounds += config.sort_rounds();
    }

    /// Merges another tracker's cost into this one.
    pub fn absorb(&mut self, other: &MpcCostTracker) {
        self.rounds += other.rounds;
        self.aggregations += other.aggregations;
        self.sorts += other.sorts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_space_and_fanout() {
        let config = MpcConfig::new(10_000, 0.5);
        assert_eq!(config.local_space(), 100);
        assert_eq!(config.tree_fanout(), 10);
        assert_eq!(config.sort_rounds(), 2);
    }

    #[test]
    fn tree_depth_edge_cases() {
        assert_eq!(tree_depth(0, 2), 1);
        assert_eq!(tree_depth(1, 2), 1);
        assert_eq!(tree_depth(2, 2), 1);
        assert_eq!(tree_depth(3, 2), 2);
        assert_eq!(tree_depth(1_000_000, 10), 6);
    }

    #[test]
    fn tree_aggregate_matches_sequential_fold() {
        let values: Vec<u64> = (1..=100).collect();
        let (sum, rounds) = tree_aggregate(&values, 4, |a, b| a + b).unwrap();
        assert_eq!(sum, values.iter().sum::<u64>());
        assert_eq!(rounds, tree_depth(100, 4));

        let (min, _) = tree_aggregate(&values, 7, |a, b| a.min(b)).unwrap();
        assert_eq!(min, 1);

        assert!(tree_aggregate::<u64, _>(&[], 2, |a, b| a + b).is_none());
        let (single, rounds) = tree_aggregate(&[42u64], 2, |a, b| a + b).unwrap();
        assert_eq!(single, 42);
        assert_eq!(rounds, 1);
    }

    #[test]
    fn cost_tracker_accumulates() {
        let config = MpcConfig::new(10_000, 0.5);
        let mut tracker = MpcCostTracker::new();
        tracker.charge_aggregation(&config, 10_000);
        tracker.charge_sort(&config);
        tracker.charge_rounds(3);
        assert_eq!(tracker.aggregations(), 1);
        assert_eq!(tracker.sorts(), 1);
        assert_eq!(tracker.rounds(), config.aggregation_rounds(10_000) + 2 + 3);

        let mut other = MpcCostTracker::new();
        other.charge_rounds(5);
        tracker.absorb(&other);
        assert_eq!(
            tracker.rounds(),
            config.aggregation_rounds(10_000) + 2 + 3 + 5
        );
    }

    #[test]
    #[should_panic(expected = "fanout must be at least 2")]
    fn rejects_unary_trees() {
        tree_depth(10, 1);
    }
}
