//! Resource metrics collected by the model simulators.

use serde::{Deserialize, Serialize};

/// Resource usage of a single AMPC round.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundReport {
    /// Zero-based round index.
    pub round: usize,
    /// Number of machines that participated.
    pub machines: usize,
    /// Maximum reads issued by any single machine.
    pub max_reads: usize,
    /// Maximum writes issued by any single machine.
    pub max_writes: usize,
    /// Total reads across machines.
    pub total_reads: usize,
    /// Total writes across machines.
    pub total_writes: usize,
    /// Size (in words) of the data store produced by the round.
    pub store_words: usize,
}

impl RoundReport {
    /// Builds a report from externally measured quantities.
    ///
    /// Algorithm drivers that simulate a round without going through
    /// [`crate::AmpcExecutor`] (e.g. the β-partition driver, which runs one
    /// LCA per machine) use this to feed their measurements into
    /// [`AmpcMetrics`].
    #[allow(clippy::too_many_arguments)]
    pub fn from_measurements(
        round: usize,
        machines: usize,
        max_reads: usize,
        max_writes: usize,
        total_reads: usize,
        total_writes: usize,
        store_words: usize,
    ) -> Self {
        RoundReport {
            round,
            machines,
            max_reads,
            max_writes,
            total_reads,
            total_writes,
            store_words,
        }
    }

    pub(crate) fn new(round: usize, machines: usize) -> Self {
        RoundReport {
            round,
            machines,
            max_reads: 0,
            max_writes: 0,
            total_reads: 0,
            total_writes: 0,
            store_words: 0,
        }
    }

    pub(crate) fn record_machine(&mut self, reads: usize, writes: usize) {
        self.max_reads = self.max_reads.max(reads);
        self.max_writes = self.max_writes.max(writes);
        self.total_reads += reads;
        self.total_writes += writes;
    }

    pub(crate) fn finish(&mut self, store_words: usize) {
        self.store_words = store_words;
    }
}

/// Wall-clock and sharding measurements for one executed round.
///
/// Unlike [`RoundReport`] these are *measurements of the simulation itself*
/// (how long the round took on the host, how reads and writes spread over
/// store shards, how many conflicting writes were merged), not model-level
/// complexity quantities — so they are excluded from [`AmpcMetrics`]
/// equality: two backends that produce bit-identical stores report equal
/// metrics even though their wall clocks differ.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundRuntimeStats {
    /// Host wall-clock time of the round, in nanoseconds.
    pub wall_clock_nanos: u64,
    /// Number of duplicate-key writes merged by the `ConflictPolicy`.
    pub conflict_merges: usize,
    /// Reads served per store shard during the round (empty for the
    /// unsharded sequential executor).
    pub shard_reads: Vec<u64>,
    /// Writes routed to each store shard during the round (empty for the
    /// unsharded sequential executor).
    pub shard_writes: Vec<u64>,
    /// Tasks each persistent pool worker completed while this round ran
    /// (empty for the sequential executor). When several executions share
    /// one pool the attribution is approximate — these are measurements of
    /// pool reuse, not model-level quantities.
    pub pool_tasks_per_worker: Vec<u64>,
    /// Estimated nanoseconds the pool's workers spent idle while this round
    /// ran (0 for the sequential executor).
    pub pool_idle_nanos: u64,
    /// Pool tasks a worker claimed from another worker's deque while this
    /// round ran (the work-stealing scheduler rebalancing skewed chunks;
    /// 0 for the sequential executor). Approximate when several executions
    /// share one pool, like the other pool counters.
    pub pool_steals: u64,
    /// Pool tasks that overflowed a full worker deque into the shared
    /// injector while this round ran (0 for the sequential executor).
    pub pool_overflows: u64,
    /// The shard count chosen by the auto-tuner for this round, when the
    /// backend runs with `shards = 0` (auto); 0 when the shard count was
    /// fixed by configuration. Logged so operators can see what the
    /// imbalance-driven re-sharding settled on.
    pub auto_shards: usize,
    /// Data-parallel tasks executed by the intra-layer round primitives
    /// (`par_node_map` / `par_color_classes` / `par_reduce`) while this
    /// logical round ran. Like the pool counters these are measurements of
    /// the simulation host, not model-level quantities.
    pub intra_tasks: u64,
    /// Nanoseconds spent inside intra-layer round primitives, summed over
    /// every primitive call. Calls made from concurrently running layer
    /// tasks overlap in time, so this can exceed the host wall clock —
    /// it measures primitive *occupancy*, not elapsed time.
    pub intra_wall_nanos: u64,
    /// Scratch-buffer acquisitions the intra-layer primitives served by
    /// recycling an existing buffer (pool leases plus reusable output
    /// buffers whose capacity sufficed) while this logical round ran. A
    /// host measurement like the pool counters; in steady state this
    /// dominates [`RoundRuntimeStats::scratch_allocs`].
    pub scratch_reuses: u64,
    /// Scratch-buffer acquisitions that had to allocate while this logical
    /// round ran (cold pools, first-touch buffers, capacity growth).
    pub scratch_allocs: u64,
    /// CPU cycles retired while this round ran, sampled from the hardware
    /// counter groups of the round's threads (`ampc-runtime`'s
    /// `perf_event_open(2)` wrapper). Zero when hardware sampling is
    /// unavailable — consult the sampler's availability flag before
    /// interpreting zeros. Like the pool counters, attribution is
    /// approximate when concurrent executions share the worker pool.
    pub cycles: u64,
    /// Instructions retired while this round ran (zero when sampling is
    /// unavailable); `instructions / cycles` is the round's IPC.
    pub instructions: u64,
    /// Cache references (usually last-level) while this round ran.
    pub cache_references: u64,
    /// Cache misses (usually last-level) while this round ran;
    /// `cache_misses / cache_references` is the miss rate the ROADMAP's
    /// memory-latency hypothesis is tested against.
    pub cache_misses: u64,
    /// Mispredicted branches while this round ran.
    pub branch_misses: u64,
}

impl RoundRuntimeStats {
    /// Element-wise combination of two rounds' stats (used when an algorithm
    /// driver folds several backend rounds into one logical round).
    pub fn combine(&self, other: &RoundRuntimeStats) -> RoundRuntimeStats {
        fn add(a: &[u64], b: &[u64]) -> Vec<u64> {
            let mut out = vec![0u64; a.len().max(b.len())];
            for (i, &v) in a.iter().enumerate() {
                out[i] += v;
            }
            for (i, &v) in b.iter().enumerate() {
                out[i] += v;
            }
            out
        }
        RoundRuntimeStats {
            wall_clock_nanos: self.wall_clock_nanos + other.wall_clock_nanos,
            conflict_merges: self.conflict_merges + other.conflict_merges,
            shard_reads: add(&self.shard_reads, &other.shard_reads),
            shard_writes: add(&self.shard_writes, &other.shard_writes),
            pool_tasks_per_worker: add(&self.pool_tasks_per_worker, &other.pool_tasks_per_worker),
            pool_idle_nanos: self.pool_idle_nanos + other.pool_idle_nanos,
            pool_steals: self.pool_steals + other.pool_steals,
            pool_overflows: self.pool_overflows + other.pool_overflows,
            // The chosen shard count is a configuration-like value, not a
            // sum: folding rounds keeps the latest non-zero choice.
            auto_shards: if other.auto_shards != 0 {
                other.auto_shards
            } else {
                self.auto_shards
            },
            intra_tasks: self.intra_tasks + other.intra_tasks,
            intra_wall_nanos: self.intra_wall_nanos + other.intra_wall_nanos,
            scratch_reuses: self.scratch_reuses + other.scratch_reuses,
            scratch_allocs: self.scratch_allocs + other.scratch_allocs,
            cycles: self.cycles + other.cycles,
            instructions: self.instructions + other.instructions,
            cache_references: self.cache_references + other.cache_references,
            cache_misses: self.cache_misses + other.cache_misses,
            branch_misses: self.branch_misses + other.branch_misses,
        }
    }

    /// Instructions per cycle, when the round carries hardware samples.
    pub fn ipc(&self) -> Option<f64> {
        (self.cycles > 0).then(|| self.instructions as f64 / self.cycles as f64)
    }

    /// Cache-miss fraction (`0.0..=1.0`), when references were sampled.
    pub fn cache_miss_rate(&self) -> Option<f64> {
        (self.cache_references > 0).then(|| self.cache_misses as f64 / self.cache_references as f64)
    }
}

/// Aggregated metrics over a full AMPC execution.
///
/// Equality compares the model-level [`RoundReport`]s only; the
/// [`RoundRuntimeStats`] are measurement data (wall clock, shard load) that
/// legitimately differ between two otherwise identical executions.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AmpcMetrics {
    rounds: Vec<RoundReport>,
    runtime: Vec<RoundRuntimeStats>,
}

impl PartialEq for AmpcMetrics {
    fn eq(&self, other: &Self) -> bool {
        self.rounds == other.rounds
    }
}

impl Eq for AmpcMetrics {}

impl AmpcMetrics {
    /// Number of rounds executed.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Per-round reports, in execution order.
    pub fn rounds(&self) -> &[RoundReport] {
        &self.rounds
    }

    /// The largest per-machine read count observed in any round.
    pub fn max_reads_per_machine(&self) -> usize {
        self.rounds.iter().map(|r| r.max_reads).max().unwrap_or(0)
    }

    /// The largest per-machine write count observed in any round.
    pub fn max_writes_per_machine(&self) -> usize {
        self.rounds.iter().map(|r| r.max_writes).max().unwrap_or(0)
    }

    /// Total communication (reads + writes) across the execution.
    pub fn total_communication(&self) -> usize {
        self.rounds
            .iter()
            .map(|r| r.total_reads + r.total_writes)
            .sum()
    }

    /// The largest data-store size (in words) produced in any round, i.e. the
    /// total space requirement of the execution.
    pub fn max_store_words(&self) -> usize {
        self.rounds.iter().map(|r| r.store_words).max().unwrap_or(0)
    }

    /// Per-round runtime measurements, in recording order.
    ///
    /// May be shorter than [`AmpcMetrics::rounds`] when some rounds were
    /// recorded from external measurements without runtime data.
    pub fn runtime_stats(&self) -> &[RoundRuntimeStats] {
        &self.runtime
    }

    /// Total host wall-clock time across all rounds with runtime data, in
    /// nanoseconds.
    pub fn total_wall_clock_nanos(&self) -> u64 {
        self.runtime.iter().map(|s| s.wall_clock_nanos).sum()
    }

    /// Total conflict merges across all rounds with runtime data.
    pub fn total_conflict_merges(&self) -> usize {
        self.runtime.iter().map(|s| s.conflict_merges).sum()
    }

    /// Appends a round's runtime measurements.
    pub fn record_runtime(&mut self, stats: RoundRuntimeStats) {
        self.runtime.push(stats);
    }

    /// Mutable access to the most recently recorded runtime stats, for
    /// executors that amend a round's record with measurements gathered
    /// around (rather than inside) the round — e.g. the runtime backend
    /// folding hardware-counter deltas into the sequential executor's
    /// wall-clock record.
    pub fn last_runtime_mut(&mut self) -> Option<&mut RoundRuntimeStats> {
        self.runtime.last_mut()
    }

    /// Appends another execution's metrics (used when an algorithm chains
    /// several executors, e.g. the guessing scheme of Lemma 5.1).
    pub fn absorb(&mut self, other: &AmpcMetrics) {
        for report in &other.rounds {
            let mut renumbered = report.clone();
            renumbered.round = self.rounds.len();
            self.rounds.push(renumbered);
        }
        self.runtime.extend(other.runtime.iter().cloned());
    }

    /// Appends an externally constructed round report (renumbering it to the
    /// next round index).
    pub fn record(&mut self, mut report: RoundReport) {
        report.round = self.rounds.len();
        self.rounds.push(report);
    }

    pub(crate) fn push_round(&mut self, report: RoundReport) {
        self.rounds.push(report);
    }

    /// Discards the most recent round report (and its runtime stats, when
    /// one was recorded for it), restoring the metrics to their pre-round
    /// state. Used by the runtime's per-round deadline enforcement to roll
    /// back an attempt whose overrun was only detected after it committed.
    pub fn discard_last_round(&mut self) {
        self.rounds.pop();
        while self.runtime.len() > self.rounds.len() {
            self.runtime.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_over_rounds() {
        let mut metrics = AmpcMetrics::default();
        let mut r0 = RoundReport::new(0, 2);
        r0.record_machine(3, 1);
        r0.record_machine(5, 2);
        r0.finish(40);
        metrics.push_round(r0);

        let mut r1 = RoundReport::new(1, 2);
        r1.record_machine(1, 7);
        r1.finish(10);
        metrics.push_round(r1);

        assert_eq!(metrics.num_rounds(), 2);
        assert_eq!(metrics.max_reads_per_machine(), 5);
        assert_eq!(metrics.max_writes_per_machine(), 7);
        assert_eq!(metrics.total_communication(), (3 + 5 + 1 + 2) + (1 + 7));
        assert_eq!(metrics.max_store_words(), 40);
    }

    #[test]
    fn absorb_renumbers_rounds() {
        let mut a = AmpcMetrics::default();
        a.push_round(RoundReport::new(0, 1));
        let mut b = AmpcMetrics::default();
        b.push_round(RoundReport::new(0, 1));
        b.push_round(RoundReport::new(1, 1));
        a.absorb(&b);
        assert_eq!(a.num_rounds(), 3);
        assert_eq!(a.rounds()[2].round, 2);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let metrics = AmpcMetrics::default();
        assert_eq!(metrics.num_rounds(), 0);
        assert_eq!(metrics.max_reads_per_machine(), 0);
        assert_eq!(metrics.total_communication(), 0);
    }
}
