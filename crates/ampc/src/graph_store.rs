//! Storing graphs in distributed data stores using the paper's key scheme.

use sparse_graph::{CsrGraph, NodeId};

use crate::dds::{DataStore, Key, Value};
use crate::error::ModelError;
use crate::executor::MachineContext;

/// Helper implementing the DDS layout for graphs described in the proof of
/// Theorem 1.2: the edges of the (sub)graph `G_i` are stored as key-value
/// pairs `(v, j) → u` where `u` is the `j`-th neighbor of `v`, plus a degree
/// entry per node.
///
/// The helper is deliberately tag-based so that algorithm crates can coexist
/// with it in the same store (they use different tags for their own data,
/// e.g. layer assignments).
#[derive(Debug, Clone, Copy, Default)]
pub struct GraphStore;

/// Key tag for degree entries: `(TAG_DEGREE, v) → degree`.
pub(crate) const TAG_DEGREE: u64 = 0xD0;
/// Key tag for adjacency entries: `(TAG_NEIGHBOR, v, j) → neighbor`.
pub(crate) const TAG_NEIGHBOR: u64 = 0xD1;

impl GraphStore {
    /// Writes `graph` into `store` using the `(v, j) → u` layout.
    pub fn load(graph: &CsrGraph, store: &mut DataStore) {
        for v in graph.nodes() {
            store.insert(
                Key::pair(TAG_DEGREE, v as u64),
                Value::single(graph.degree(v) as u64),
            );
            for (j, &u) in graph.neighbors(v).iter().enumerate() {
                store.insert(
                    Key::triple(TAG_NEIGHBOR, v as u64, j as u64),
                    Value::single(u as u64),
                );
            }
        }
    }

    /// Creates a fresh store containing only `graph`.
    pub fn store_of(graph: &CsrGraph) -> DataStore {
        let mut store = DataStore::new();
        Self::load(graph, &mut store);
        store
    }

    /// Number of words the graph occupies in a store (for space accounting).
    pub fn words_for(graph: &CsrGraph) -> usize {
        // Degree entries: (2-word key + 1-word value) per node;
        // neighbor entries: (3-word key + 1-word value) per directed edge.
        3 * graph.num_nodes() + 4 * 2 * graph.num_edges()
    }

    /// Reads the degree of `v` through a machine context (one query).
    ///
    /// # Errors
    ///
    /// Propagates budget violations; returns `InvalidUsage` if the degree
    /// entry is missing (the graph was not loaded).
    pub fn degree(ctx: &mut MachineContext<'_>, v: NodeId) -> Result<usize, ModelError> {
        match ctx.read(Key::pair(TAG_DEGREE, v as u64))? {
            Some(value) => Ok(value.words()[0] as usize),
            None => Err(ModelError::InvalidUsage(format!(
                "degree entry for node {v} missing from the data store"
            ))),
        }
    }

    /// Reads the `j`-th neighbor of `v` through a machine context (one
    /// query). Returns `Ok(None)` when `j` is out of range.
    ///
    /// # Errors
    ///
    /// Propagates budget violations.
    pub fn neighbor(
        ctx: &mut MachineContext<'_>,
        v: NodeId,
        j: usize,
    ) -> Result<Option<NodeId>, ModelError> {
        Ok(ctx
            .read(Key::triple(TAG_NEIGHBOR, v as u64, j as u64))?
            .map(|value| value.words()[0] as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AmpcConfig;
    use crate::executor::{AmpcExecutor, ConflictPolicy};

    #[test]
    fn load_and_query_through_context() {
        let graph = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let store = GraphStore::store_of(&graph);
        assert_eq!(store.len(), 4 + 2 * 4);

        let config = AmpcConfig::for_input_size(1_000, 0.5);
        let mut exec = AmpcExecutor::new(config, store);
        exec.round(4, ConflictPolicy::Error, |machine, ctx| {
            let degree = GraphStore::degree(ctx, machine)?;
            assert_eq!(degree, 2);
            let first = GraphStore::neighbor(ctx, machine, 0)?;
            assert!(first.is_some());
            assert_eq!(GraphStore::neighbor(ctx, machine, 5)?, None);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn missing_degree_is_an_error() {
        let config = AmpcConfig::for_input_size(1_000, 0.5);
        let mut exec = AmpcExecutor::new(config, DataStore::new());
        let err = exec
            .round(1, ConflictPolicy::Error, |_, ctx| {
                GraphStore::degree(ctx, 7).map(|_| ())
            })
            .unwrap_err();
        assert!(matches!(err, ModelError::InvalidUsage(_)));
    }

    #[test]
    fn words_estimate_scales_with_graph() {
        let small = CsrGraph::from_edges(3, [(0, 1)]);
        let large = CsrGraph::from_edges(100, (0..99).map(|i| (i, i + 1)));
        assert!(GraphStore::words_for(&large) > GraphStore::words_for(&small));
    }
}
