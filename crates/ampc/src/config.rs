//! Resource configuration of the simulated AMPC deployment.

use serde::{Deserialize, Serialize};

/// Resource parameters of an AMPC execution (Section 3.1 of the paper).
///
/// Given an input of size `N` and a constant `δ ∈ (0, 1)`, every machine has
/// `S = Θ(N^δ)` words of local space, may issue `O(S)` reads and `O(S)`
/// writes per round, and the total space across machines is `O(N^{1+δ})`.
///
/// The simulator works with explicit word counts; the constant in front of
/// `N^δ` can be adjusted through `space_slack`, which several of the paper's
/// algorithms implicitly rely on ("scaling the constant δ" in Lemma 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AmpcConfig {
    /// Input size `N` (for graphs, `n + m`).
    pub input_size: usize,
    /// The exponent `δ`.
    pub delta: f64,
    /// Multiplicative slack applied to the local-space/budget bound.
    pub space_slack: f64,
}

impl AmpcConfig {
    /// Configuration for an input of size `N` with exponent `delta` and unit
    /// slack.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is not in `(0, 1]`.
    pub fn for_input_size(input_size: usize, delta: f64) -> Self {
        assert!(delta > 0.0 && delta <= 1.0, "delta must lie in (0, 1]");
        AmpcConfig {
            input_size,
            delta,
            space_slack: 1.0,
        }
    }

    /// Returns a copy with the given multiplicative space slack.
    pub fn with_space_slack(mut self, slack: f64) -> Self {
        assert!(slack >= 1.0, "slack must be at least 1");
        self.space_slack = slack;
        self
    }

    /// Local space `S = ⌈slack · N^δ⌉` in words (at least 1).
    pub fn local_space(&self) -> usize {
        let base = (self.input_size.max(1) as f64).powf(self.delta);
        (self.space_slack * base).ceil().max(1.0) as usize
    }

    /// Per-round read budget of a machine (`O(S)`, equal to `S` here).
    pub fn read_budget(&self) -> usize {
        self.local_space()
    }

    /// Per-round write budget of a machine (`O(S)`, equal to `S` here).
    pub fn write_budget(&self) -> usize {
        self.local_space()
    }

    /// Number of machines needed so that `P · S ≥ slack · N^{1+δ}` total
    /// space is available (the paper uses `P = n` machines via parallel
    /// slackness; the simulator only needs the count for reporting).
    pub fn machines_for_total_space(&self) -> usize {
        let total = (self.input_size.max(1) as f64).powf(1.0 + self.delta) * self.space_slack;
        (total / self.local_space() as f64).ceil().max(1.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_space_follows_power_law() {
        let config = AmpcConfig::for_input_size(10_000, 0.5);
        assert_eq!(config.local_space(), 100);
        assert_eq!(config.read_budget(), 100);
        assert_eq!(config.write_budget(), 100);
    }

    #[test]
    fn slack_scales_budgets() {
        let config = AmpcConfig::for_input_size(10_000, 0.5).with_space_slack(3.0);
        assert_eq!(config.local_space(), 300);
    }

    #[test]
    fn machine_count_covers_total_space() {
        let config = AmpcConfig::for_input_size(10_000, 0.5);
        let machines = config.machines_for_total_space();
        assert!(machines * config.local_space() >= 10_000usize.pow(1) * 100);
    }

    #[test]
    fn tiny_inputs_still_get_space() {
        let config = AmpcConfig::for_input_size(0, 0.3);
        assert!(config.local_space() >= 1);
        assert!(config.machines_for_total_space() >= 1);
    }

    #[test]
    #[should_panic(expected = "delta must lie in (0, 1]")]
    fn rejects_invalid_delta() {
        AmpcConfig::for_input_size(10, 1.5);
    }
}
