//! The AMPC β-partitioning algorithm (Theorem 1.2).
//!
//! Each AMPC round, every remaining node's machine runs the sublinear LCA of
//! Remark 4.8 on the subgraph induced by the still-unlayered nodes, writes
//! the resulting proof partition into the next data store, and the proofs are
//! min-merged (Lemma 4.10) into a globally consistent partial β-partition.
//! Nodes that received a finite layer are appended to the output (with a
//! per-round offset) and the algorithm recurses on the rest. When the LCA
//! cannot make progress (or when the caller disables it, as in the
//! large-arboricity regime), a Barenboim–Elkin peeling round is used
//! instead, which always peels a constant fraction of nodes as long as
//! `β ≥ 2α` (Lemma 3.4).

use std::fmt;
use std::sync::Arc;

use ampc_model::{
    AmpcConfig, AmpcMetrics, ConflictPolicy, DataStore, Key, LcaOracle, ModelError, RoundReport,
    RoundRuntimeStats, Value,
};
use ampc_runtime::trace::{span_on, TraceContext};
use ampc_runtime::RuntimeConfig;
use sparse_graph::{CsrGraph, InducedSubgraph, NodeId};

use crate::beta::BetaPartition;
use crate::coin_game::CoinGameConfig;
use crate::layer::Layer;
use crate::lca::partial_partition_lca;

/// Errors reported by the AMPC partitioning drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// No progress was possible: every remaining node has degree above `β`
    /// in the residual graph, which means `β < 2α(G)` (Lemma 3.4).
    Stalled {
        /// Number of nodes that could not be layered.
        remaining: usize,
    },
    /// The round limit was exhausted before every node was layered.
    RoundLimitExceeded {
        /// The limit that was in force.
        limit: usize,
        /// Number of nodes still unlayered.
        remaining: usize,
    },
    /// A model-resource violation (query or space budget) occurred.
    Model(ModelError),
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::Stalled { remaining } => write!(
                f,
                "partitioning stalled with {remaining} nodes left: beta is below twice the \
                 arboricity of the residual graph"
            ),
            PartitionError::RoundLimitExceeded { limit, remaining } => write!(
                f,
                "round limit {limit} exhausted with {remaining} nodes unlayered"
            ),
            PartitionError::Model(err) => write!(f, "model violation: {err}"),
        }
    }
}

impl std::error::Error for PartitionError {}

impl From<ModelError> for PartitionError {
    fn from(err: ModelError) -> Self {
        PartitionError::Model(err)
    }
}

/// Parameters of the AMPC β-partitioning algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionParams {
    /// The out-degree parameter `β` (must satisfy `β ≥ (2 + ε)α` for the
    /// guarantees to apply).
    pub beta: usize,
    /// Local-space exponent `δ` used for resource accounting.
    pub delta: f64,
    /// The coin-game budget `x`. `None` derives `x = max(4, ⌈n^{δ/6}⌉)` from
    /// the graph, mirroring the choice `x = n^{δ/c}`, `c > 6` in the proof of
    /// Theorem 1.2.
    pub x: Option<usize>,
    /// Optional override of the per-round reported-layer cap
    /// (default `⌊log_{β+1} x⌋`).
    pub layer_cap: Option<usize>,
    /// Optional override of the coin game's super-iteration count
    /// (default `x²`). Lower values trade AMPC rounds for simulation speed
    /// without affecting correctness.
    pub super_iterations: Option<usize>,
    /// Optional override of the coin game's flow iterations.
    pub flow_iterations: Option<usize>,
    /// Hard limit on AMPC rounds (safety net; the theory predicts
    /// `O(log_{β/(2α)} β)` rounds).
    pub max_rounds: usize,
    /// If `false`, skip the LCA entirely and peel one Barenboim–Elkin layer
    /// per round — the algorithm used in the large-arboricity regime
    /// (`α ≥ n^{Ω(δ²)}`) of Theorem 1.2.
    pub use_lca: bool,
    /// Which executor backend runs the AMPC rounds (sequential reference
    /// simulator or the sharded parallel runtime). Does not affect the
    /// result: backends are bit-identical for a fixed input.
    pub runtime: RuntimeConfig,
}

impl PartitionParams {
    /// Parameters with the paper's defaults for a given `β`.
    pub fn new(beta: usize) -> Self {
        PartitionParams {
            beta,
            delta: 0.5,
            x: None,
            layer_cap: None,
            super_iterations: None,
            flow_iterations: None,
            max_rounds: 256,
            use_lca: true,
            runtime: RuntimeConfig::default(),
        }
    }

    /// Overrides the coin budget `x`.
    pub fn with_x(mut self, x: usize) -> Self {
        self.x = Some(x);
        self
    }

    /// Overrides the local-space exponent `δ`.
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Overrides the reported-layer cap per round.
    pub fn with_layer_cap(mut self, cap: usize) -> Self {
        self.layer_cap = Some(cap);
        self
    }

    /// Overrides the coin game's super-iteration count.
    pub fn with_super_iterations(mut self, super_iterations: usize) -> Self {
        self.super_iterations = Some(super_iterations);
        self
    }

    /// Overrides the round limit.
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Disables the LCA (pure Barenboim–Elkin peeling, one layer per round).
    pub fn without_lca(mut self) -> Self {
        self.use_lca = false;
        self
    }

    /// Selects the executor backend for the AMPC rounds.
    pub fn with_runtime(mut self, runtime: RuntimeConfig) -> Self {
        self.runtime = runtime;
        self
    }

    /// The effective coin budget for an `n`-node residual graph.
    pub fn effective_x(&self, n: usize) -> usize {
        self.x.unwrap_or_else(|| {
            let derived = (n.max(2) as f64).powf(self.delta / 6.0).ceil() as usize;
            derived.max(4)
        })
    }

    fn coin_game_config(&self, n: usize) -> CoinGameConfig {
        let mut config = CoinGameConfig::new(self.effective_x(n), self.beta);
        config.layer_cap = self.layer_cap;
        config.super_iterations = self.super_iterations;
        config.flow_iterations = self.flow_iterations;
        config
    }
}

/// Result of the AMPC β-partitioning algorithm.
#[derive(Debug, Clone)]
pub struct AmpcPartitionResult {
    /// The computed (complete) β-partition.
    pub partition: BetaPartition,
    /// Number of AMPC rounds used.
    pub rounds: usize,
    /// Per-round resource accounting (machines = remaining nodes, reads =
    /// LCA queries, writes = proof sizes).
    pub metrics: AmpcMetrics,
    /// Number of still-unlayered nodes *before* each round (index 0 = `n`).
    pub remaining_per_round: Vec<usize>,
    /// Largest per-node LCA query count observed in any round.
    pub max_queries_per_node: usize,
    /// Number of rounds that fell back to (or deliberately used)
    /// Barenboim–Elkin peeling instead of the LCA.
    pub peeling_rounds: usize,
}

impl AmpcPartitionResult {
    /// The number of distinct layers of the output partition.
    pub fn partition_size(&self) -> usize {
        self.partition.size()
    }
}

/// Resource configuration for the partition rounds.
///
/// Budgets follow the model's `S = slack · N^δ`, with the slack chosen so
/// the per-machine write budget covers the largest possible LCA proof (the
/// coin game explores at most `x · super_iterations + 1` nodes) — the
/// "scaling the constant in front of `N^δ`" the paper's algorithms rely on
/// (Lemma 5.1). Read accounting for the LCA goes through
/// [`ampc_model::MachineContext::note_reads`], mirroring the
/// measurement-only role reads had before the backend abstraction.
fn partition_round_config(graph: &CsrGraph, params: &PartitionParams) -> AmpcConfig {
    let input_size = graph.num_nodes() + graph.num_edges();
    let x = params.effective_x(graph.num_nodes());
    let super_iterations = params.super_iterations.unwrap_or(x.saturating_mul(x));
    let needed = x
        .saturating_mul(super_iterations)
        .saturating_add(x)
        .saturating_add(4);
    let config = AmpcConfig::for_input_size(input_size, params.delta);
    let slack = (needed as f64 / config.local_space() as f64).max(1.0);
    config.with_space_slack(slack)
}

/// Folds the reports of an LCA attempt and its peeling fallback (run as two
/// backend rounds) into the one logical AMPC round they constitute.
fn combine_reports(lca: &RoundReport, peel: &RoundReport) -> RoundReport {
    RoundReport::from_measurements(
        lca.round,
        lca.machines.max(peel.machines),
        lca.max_reads.max(peel.max_reads),
        lca.max_writes.max(peel.max_writes),
        lca.total_reads + peel.total_reads,
        lca.total_writes + peel.total_writes,
        peel.store_words,
    )
}

/// Copies the backend's per-round runtime measurements into the result
/// metrics, folding them per logical round: `spans[i]` backend rounds
/// contributed to logical round `i` (2 when an LCA attempt fell through to
/// peeling), so `runtime_stats()[i]` describes `rounds()[i]`.
fn absorb_runtime_stats(metrics: &mut AmpcMetrics, stats: &[RoundRuntimeStats], spans: &[usize]) {
    let mut next = 0usize;
    for &span in spans {
        let folded = stats[next..next + span]
            .iter()
            .fold(RoundRuntimeStats::default(), |acc, stat| acc.combine(stat));
        metrics.record_runtime(folded);
        next += span;
    }
    debug_assert_eq!(
        next,
        stats.len(),
        "every backend round belongs to a logical round"
    );
}

/// Computes a complete β-partition of `graph` in the AMPC model
/// (Theorem 1.2).
///
/// # Errors
///
/// * [`PartitionError::Stalled`] if `β` is smaller than twice the arboricity
///   of some residual graph (no node has degree ≤ β), in which case no
///   β-partition of the requested `β` exists that this algorithm can find.
/// * [`PartitionError::RoundLimitExceeded`] if `params.max_rounds` is too
///   small.
/// * [`PartitionError::Model`] if a query budget is violated.
///
/// # Examples
///
/// ```
/// use beta_partition::{ampc_beta_partition, PartitionParams};
/// use sparse_graph::generators;
///
/// let graph = generators::grid(20, 20); // planar, arboricity <= 2
/// let params = PartitionParams::new(5).with_x(4);
/// let result = ampc_beta_partition(&graph, &params).unwrap();
/// assert!(!result.partition.is_partial());
/// assert!(result.partition.validate(&graph).is_ok());
/// ```
pub fn ampc_beta_partition(
    graph: &CsrGraph,
    params: &PartitionParams,
) -> Result<AmpcPartitionResult, PartitionError> {
    ampc_beta_partition_traced(graph, params, None)
}

/// [`ampc_beta_partition`] with an optional span recorder attached: the
/// backend emits round/merge/retune spans into `trace` and the driver adds
/// one `partition.round` span per logical round. Tracing is
/// measurement-only — the partition (and the model-level metrics) are
/// bit-identical with and without it.
///
/// # Errors
///
/// See [`ampc_beta_partition`].
pub fn ampc_beta_partition_traced(
    graph: &CsrGraph,
    params: &PartitionParams,
    trace: Option<Arc<TraceContext>>,
) -> Result<AmpcPartitionResult, PartitionError> {
    let n = graph.num_nodes();
    let mut partition = BetaPartition::all_infinite(n, params.beta);
    let mut remaining: Vec<NodeId> = graph.nodes().collect();
    let mut offset = 0usize;
    let mut metrics = AmpcMetrics::default();
    let mut remaining_per_round = Vec::new();
    let mut max_queries_per_node = 0usize;
    let mut peeling_rounds = 0usize;
    let mut rounds = 0usize;
    // Backend rounds per logical round (2 when LCA fell through to peeling).
    let mut round_spans: Vec<usize> = Vec::new();

    // One backend drives every round: the machines of a round (one per
    // still-unlayered node) write their LCA proofs into the next data store
    // and the min-merge of Lemma 4.10 is exactly `ConflictPolicy::KeepMin`.
    let mut backend = params
        .runtime
        .backend(partition_round_config(graph, params), DataStore::new());
    backend.set_trace(trace.clone());
    let backend = backend.as_mut();

    while !remaining.is_empty() {
        if rounds >= params.max_rounds {
            return Err(PartitionError::RoundLimitExceeded {
                limit: params.max_rounds,
                remaining: remaining.len(),
            });
        }
        remaining_per_round.push(remaining.len());
        rounds += 1;
        let _round_span = span_on(trace.as_deref(), "partition.round", "driver")
            .with_arg("round", rounds as u64)
            .with_arg("remaining", remaining.len() as u64);

        let subgraph = InducedSubgraph::new(graph, &remaining);
        let sub = subgraph.graph();
        let sub_n = sub.num_nodes();

        // Try the LCA-based round first (unless disabled): machine `v` runs
        // the sublinear LCA of Remark 4.8 and writes its proof partition
        // (one `(node) -> layer` entry per explored node) into the next
        // store; KeepMin merges all proofs into a globally consistent
        // partial β-partition (Lemma 4.10).
        let mut assigned: Vec<(NodeId, usize)> = Vec::new(); // (local node, local layer)
        let mut lca_report: Option<RoundReport> = None;
        let mut peel_report: Option<RoundReport> = None;

        if params.use_lca {
            let config = params.coin_game_config(sub_n);
            let report = backend.round(sub_n, ConflictPolicy::KeepMin, |machine, ctx| {
                // A fresh oracle view per machine: queries are counted per
                // machine, exactly the per-node accounting of Lemma 4.7.
                let oracle = LcaOracle::new(sub);
                let output = partial_partition_lca(&oracle, machine, &config)?;
                ctx.note_reads(output.queries);
                for (&node, &layer) in &output.proof {
                    ctx.write(Key::single(node as u64), Value::single(layer as u64))?;
                }
                Ok(())
            })?;
            for v in sub.nodes() {
                if let Some(value) = backend.get(Key::single(v as u64)) {
                    assigned.push((v, value.words()[0] as usize));
                }
            }
            lca_report = Some(report);
        }

        // Fallback (and the deliberate large-arboricity path): one
        // Barenboim–Elkin peeling layer — every node of residual degree <= β
        // writes layer 0 for itself.
        if assigned.is_empty() {
            peeling_rounds += 1;
            let mut report = backend.round(sub_n, ConflictPolicy::KeepMin, |machine, ctx| {
                ctx.note_reads(1);
                if sub.degree(machine) <= params.beta {
                    ctx.write(Key::single(machine as u64), Value::single(0))?;
                }
                Ok(())
            })?;
            // A machine inspects up to β + 1 adjacency entries to certify
            // its low degree; mirror the seed's accounting.
            report.max_reads = report.max_reads.max(params.beta + 1);
            for v in sub.nodes() {
                if backend.get(Key::single(v as u64)).is_some() {
                    assigned.push((v, 0));
                }
            }
            peel_report = Some(report);
        }

        if assigned.is_empty() {
            return Err(PartitionError::Stalled {
                remaining: remaining.len(),
            });
        }

        let round_max_layer = assigned.iter().map(|&(_, layer)| layer).max().unwrap_or(0);
        for &(local, layer) in &assigned {
            let original = subgraph.to_original(local);
            partition.set_layer(original, Layer::Finite(offset + layer));
        }
        offset += round_max_layer + 1;

        // One logical AMPC round per loop iteration: when the LCA attempt
        // fell through to peeling, both backend rounds fold into one report.
        let mut report = match (lca_report, peel_report) {
            (Some(lca), Some(peel)) => {
                round_spans.push(2);
                combine_reports(&lca, &peel)
            }
            (Some(report), None) | (None, Some(report)) => {
                round_spans.push(1);
                report
            }
            (None, None) => unreachable!("at least one backend round ran"),
        };
        // Model-level space accounting as in the original driver: the
        // round's DDS conceptually holds the residual graph plus one layer
        // entry per remaining node (the adjacency is served through the
        // LcaOracle side channel, so the backend store only contains the
        // written layer entries).
        report.store_words = 2 * sub.num_edges() + sub_n;
        max_queries_per_node = max_queries_per_node.max(report.max_reads);
        metrics.record(report);

        let assigned_set: std::collections::HashSet<NodeId> =
            assigned.iter().map(|&(local, _)| local).collect();
        remaining = sub
            .nodes()
            .filter(|v| !assigned_set.contains(v))
            .map(|v| subgraph.to_original(v))
            .collect();
    }

    // Surface the backend's runtime measurements (wall clock, shard load,
    // conflict merges) through the result metrics.
    absorb_runtime_stats(
        &mut metrics,
        backend.metrics().runtime_stats(),
        &round_spans,
    );

    debug_assert!(partition.validate(graph).is_ok());

    Ok(AmpcPartitionResult {
        partition,
        rounds,
        metrics,
        remaining_per_round,
        max_queries_per_node,
        peeling_rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sparse_graph::generators;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn partitions_forest_unions_completely() {
        for k in [1usize, 2, 3] {
            let graph = generators::forest_union(250, k, &mut rng(100 + k as u64));
            let beta = 2 * k + 2;
            let params = PartitionParams::new(beta).with_x(4);
            let result = ampc_beta_partition(&graph, &params).unwrap();
            assert!(!result.partition.is_partial(), "k = {k}");
            assert!(result.partition.validate(&graph).is_ok(), "k = {k}");
            assert_eq!(result.remaining_per_round[0], 250);
            assert!(result.rounds >= 1);
            assert_eq!(result.metrics.num_rounds(), result.rounds);
        }
    }

    #[test]
    fn orientation_from_result_has_bounded_out_degree() {
        let graph = generators::preferential_attachment(300, 3, &mut rng(7));
        let beta = 8;
        let params = PartitionParams::new(beta).with_x(4);
        let result = ampc_beta_partition(&graph, &params).unwrap();
        let orientation = result.partition.orientation(&graph).unwrap();
        assert!(orientation.is_acyclic());
        assert!(orientation.max_out_degree() <= beta);
    }

    #[test]
    fn pure_peeling_mode_matches_h_partition_round_count() {
        let graph = generators::forest_union(400, 2, &mut rng(8));
        let beta = 6;
        let params = PartitionParams::new(beta).without_lca();
        let result = ampc_beta_partition(&graph, &params).unwrap();
        let peeled = crate::h_partition::h_partition(&graph, beta);
        assert_eq!(result.rounds, peeled.rounds);
        assert_eq!(result.peeling_rounds, result.rounds);
        assert!(!result.partition.is_partial());
        assert!(result.partition.validate(&graph).is_ok());
    }

    #[test]
    fn lca_mode_uses_fewer_rounds_than_peeling_on_deep_instances() {
        // On a (beta + 1)-ary tree the peeling needs one round per level,
        // while the LCA collapses several levels (up to its layer cap) into
        // one AMPC round.
        let beta = 3;
        let graph = generators::complete_kary_tree(beta + 1, 5);
        let peeling =
            ampc_beta_partition(&graph, &PartitionParams::new(beta).without_lca()).unwrap();
        assert_eq!(peeling.rounds, 6);
        let lca = ampc_beta_partition(
            &graph,
            &PartitionParams::new(beta).with_x(16).with_layer_cap(2),
        )
        .unwrap();
        assert!(
            lca.rounds < peeling.rounds,
            "LCA rounds {} not below peeling rounds {}",
            lca.rounds,
            peeling.rounds
        );
        assert!(lca.partition.validate(&graph).is_ok());
        assert!(!lca.partition.is_partial());
    }

    #[test]
    fn stalls_when_beta_is_too_small() {
        let graph = generators::complete(8); // arboricity 4, degeneracy 7
        let params = PartitionParams::new(3);
        let err = ampc_beta_partition(&graph, &params).unwrap_err();
        assert!(matches!(err, PartitionError::Stalled { remaining: 8 }));
        assert!(err.to_string().contains("stalled"));
    }

    #[test]
    fn round_limit_is_enforced() {
        let graph = generators::complete_kary_tree(4, 4);
        let params = PartitionParams::new(3).without_lca().with_max_rounds(2);
        let err = ampc_beta_partition(&graph, &params).unwrap_err();
        assert!(matches!(
            err,
            PartitionError::RoundLimitExceeded { limit: 2, .. }
        ));
    }

    #[test]
    fn empty_graph_is_trivially_partitioned() {
        let graph = sparse_graph::CsrGraph::empty(0);
        let result = ampc_beta_partition(&graph, &PartitionParams::new(3)).unwrap();
        assert_eq!(result.rounds, 0);
        assert_eq!(result.partition.num_nodes(), 0);
    }

    #[test]
    fn effective_x_derivation() {
        let params = PartitionParams::new(5).with_delta(0.6);
        // n^{0.1} for n = 10^5 is 10^{0.5} ~ 3.16 -> ceil 4 -> max(4, 4).
        assert_eq!(params.effective_x(100_000), 4);
        // Explicit x wins.
        assert_eq!(params.with_x(9).effective_x(100_000), 9);
        // Tiny graphs still get the minimum budget.
        assert_eq!(PartitionParams::new(5).effective_x(1), 4);
    }

    #[test]
    fn metrics_report_queries_and_writes() {
        let graph = generators::forest_union(200, 2, &mut rng(9));
        let params = PartitionParams::new(6).with_x(4);
        let result = ampc_beta_partition(&graph, &params).unwrap();
        assert!(result.max_queries_per_node > 0);
        assert!(result.metrics.max_reads_per_machine() >= result.max_queries_per_node);
        assert!(result.metrics.total_communication() > 0);
        // The per-round remaining counts are strictly decreasing.
        for window in result.remaining_per_round.windows(2) {
            assert!(window[1] < window[0]);
        }
    }
}
