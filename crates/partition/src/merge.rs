//! Min-merging partial β-partitions (Lemma 4.10).

use std::collections::HashMap;

use sparse_graph::NodeId;

use crate::beta::BetaPartition;
use crate::layer::Layer;

/// Merges a collection of partial β-partitions, each given as a sparse map
/// from node to finite layer (nodes missing from a map are at `∞`), into a
/// single partial β-partition via the node-wise minimum
/// `λ(v) = min_u ℓ_u(v)`.
///
/// By Lemma 4.10 the result is again a partial β-partition, and a node is
/// finite in the result as soon as *any* input assigns it a finite layer.
/// This is exactly how the AMPC algorithm of Theorem 1.2 combines the
/// per-node proofs produced by the LCA of Remark 4.8.
///
/// # Examples
///
/// ```
/// use beta_partition::{merge_min, Layer};
/// use std::collections::HashMap;
///
/// let a: HashMap<usize, usize> = [(0, 3), (1, 5)].into_iter().collect();
/// let b: HashMap<usize, usize> = [(1, 2), (2, 4)].into_iter().collect();
/// let merged = merge_min(4, 7, [&a, &b]);
/// assert_eq!(merged.layer(0), Layer::Finite(3));
/// assert_eq!(merged.layer(1), Layer::Finite(2));
/// assert_eq!(merged.layer(2), Layer::Finite(4));
/// assert_eq!(merged.layer(3), Layer::Infinite);
/// ```
pub fn merge_min<'a, I>(num_nodes: usize, beta: usize, partitions: I) -> BetaPartition
where
    I: IntoIterator<Item = &'a HashMap<NodeId, usize>>,
{
    let mut merged = BetaPartition::all_infinite(num_nodes, beta);
    for partition in partitions {
        for (&node, &layer) in partition {
            debug_assert!(node < num_nodes, "node {node} out of range");
            let candidate = Layer::Finite(layer);
            if candidate < merged.layer(node) {
                merged.set_layer(node, candidate);
            }
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::induced::induced_partition;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sparse_graph::generators;

    #[test]
    fn empty_merge_is_all_infinite() {
        let merged = merge_min(3, 2, std::iter::empty::<&HashMap<NodeId, usize>>());
        assert!(merged.is_partial());
        assert_eq!(merged.infinite_nodes().len(), 3);
    }

    #[test]
    fn merging_induced_partitions_stays_valid() {
        // Lemma 4.10 applied to sigma_{S_i} for random subsets S_i: the
        // node-wise minimum must remain a valid partial beta-partition.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let graph = generators::forest_union(200, 2, &mut rng);
        let beta = 5;
        let nodes: Vec<NodeId> = graph.nodes().collect();

        let mut sparse_partitions: Vec<HashMap<NodeId, usize>> = Vec::new();
        for _ in 0..6 {
            let mut shuffled = nodes.clone();
            shuffled.shuffle(&mut rng);
            let subset = &shuffled[..100];
            let mut in_s = vec![false; graph.num_nodes()];
            for &v in subset {
                in_s[v] = true;
            }
            let sigma = induced_partition(&graph, &in_s, beta);
            let sparse: HashMap<NodeId, usize> = graph
                .nodes()
                .filter_map(|v| sigma.layer(v).finite().map(|l| (v, l)))
                .collect();
            sparse_partitions.push(sparse);
        }

        let merged = merge_min(graph.num_nodes(), beta, sparse_partitions.iter());
        assert!(merged.validate(&graph).is_ok());
        // A node is finite in the merge iff it is finite in some input.
        for v in graph.nodes() {
            let finite_somewhere = sparse_partitions.iter().any(|p| p.contains_key(&v));
            assert_eq!(merged.layer(v).is_finite(), finite_somewhere);
        }
    }

    #[test]
    fn merge_takes_pointwise_minimum() {
        let a: HashMap<NodeId, usize> = [(0, 9), (2, 1)].into_iter().collect();
        let b: HashMap<NodeId, usize> = [(0, 4)].into_iter().collect();
        let c: HashMap<NodeId, usize> = [(0, 6), (1, 0)].into_iter().collect();
        let merged = merge_min(3, 3, [&a, &b, &c]);
        assert_eq!(merged.layer(0), Layer::Finite(4));
        assert_eq!(merged.layer(1), Layer::Finite(0));
        assert_eq!(merged.layer(2), Layer::Finite(1));
    }
}
