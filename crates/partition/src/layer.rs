//! The layer values `N ∪ {∞}` used by (partial) β-partitions.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A layer of a (partial) β-partition: a natural number or `∞`.
///
/// The derived ordering places every finite layer below [`Layer::Infinite`],
/// matching the paper's convention that nodes with layer `∞` sit "above"
/// everything (they count towards every node's higher-or-equal neighbor
/// budget).
///
/// # Examples
///
/// ```
/// use beta_partition::Layer;
///
/// assert!(Layer::Finite(3) < Layer::Finite(7));
/// assert!(Layer::Finite(1_000_000) < Layer::Infinite);
/// assert_eq!(Layer::Finite(2).finite(), Some(2));
/// assert_eq!(Layer::Infinite.finite(), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Layer {
    /// A finite layer index.
    Finite(usize),
    /// The infinity layer (unassigned / undecided nodes).
    Infinite,
}

impl Layer {
    /// Returns the finite layer index, or `None` for [`Layer::Infinite`].
    pub fn finite(self) -> Option<usize> {
        match self {
            Layer::Finite(i) => Some(i),
            Layer::Infinite => None,
        }
    }

    /// Returns `true` if the layer is finite.
    pub fn is_finite(self) -> bool {
        matches!(self, Layer::Finite(_))
    }

    /// Returns `true` if the layer is `∞`.
    pub fn is_infinite(self) -> bool {
        matches!(self, Layer::Infinite)
    }

    /// Adds a finite offset to a finite layer; `∞` stays `∞`.
    pub fn shifted(self, offset: usize) -> Layer {
        match self {
            Layer::Finite(i) => Layer::Finite(i + offset),
            Layer::Infinite => Layer::Infinite,
        }
    }

    /// The minimum of two layers (the merge operation of Lemma 4.10).
    pub fn min(self, other: Layer) -> Layer {
        std::cmp::min(self, other)
    }
}

impl From<usize> for Layer {
    fn from(value: usize) -> Self {
        Layer::Finite(value)
    }
}

impl From<Option<usize>> for Layer {
    fn from(value: Option<usize>) -> Self {
        match value {
            Some(i) => Layer::Finite(i),
            None => Layer::Infinite,
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Layer::Finite(i) => write!(f, "{i}"),
            Layer::Infinite => write!(f, "∞"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_places_infinite_on_top() {
        assert!(Layer::Finite(0) < Layer::Finite(1));
        assert!(Layer::Finite(usize::MAX) < Layer::Infinite);
        assert_eq!(Layer::Infinite, Layer::Infinite);
        assert_eq!(Layer::Finite(3).min(Layer::Infinite), Layer::Finite(3));
        assert_eq!(Layer::Infinite.min(Layer::Finite(9)), Layer::Finite(9));
    }

    #[test]
    fn conversions_and_accessors() {
        assert_eq!(Layer::from(4), Layer::Finite(4));
        assert_eq!(Layer::from(Some(4)), Layer::Finite(4));
        assert_eq!(Layer::from(None), Layer::Infinite);
        assert!(Layer::Finite(0).is_finite());
        assert!(Layer::Infinite.is_infinite());
        assert_eq!(Layer::Finite(2).shifted(3), Layer::Finite(5));
        assert_eq!(Layer::Infinite.shifted(3), Layer::Infinite);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Layer::Finite(12).to_string(), "12");
        assert_eq!(Layer::Infinite.to_string(), "∞");
    }
}
