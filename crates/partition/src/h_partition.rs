//! The Barenboim–Elkin H-partition peeling algorithm.
//!
//! Iteratively place every node of (remaining) degree at most `β` into the
//! current layer and delete it. For `β ≥ (2 + ε)α` Lemma 3.4 guarantees that
//! a constant fraction of nodes is peeled per round, so the partition has
//! `O(log_{β/(2α)} n)` layers.
//!
//! The paper uses this routine twice: as the large-arboricity fallback inside
//! Theorem 1.2 (where each peeling round is one AMPC round) and implicitly as
//! the definition of the natural β-partition. It also serves as the baseline
//! "non-adaptive" partitioner in the experiment tables.

use sparse_graph::{CsrGraph, NodeId};

use crate::beta::BetaPartition;
use crate::layer::Layer;

/// Result of the peeling algorithm.
#[derive(Debug, Clone)]
pub struct HPartitionResult {
    /// The computed β-partition (complete iff the peeling never stalled).
    pub partition: BetaPartition,
    /// Number of peeling rounds executed (one AMPC/LOCAL round each).
    pub rounds: usize,
    /// Number of nodes peeled per round.
    pub peeled_per_round: Vec<usize>,
}

/// Runs the Barenboim–Elkin peeling until no node can be peeled any more.
///
/// Returns a *partial* partition if the remaining graph has minimum degree
/// above `β` at some point (which cannot happen when `β ≥ 2α`, by
/// Lemma 3.4); callers that require completeness should check
/// [`BetaPartition::is_partial`].
///
/// # Examples
///
/// ```
/// use beta_partition::h_partition;
/// use sparse_graph::generators;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
/// let graph = generators::forest_union(500, 3, &mut rng); // alpha <= 3
/// let result = h_partition(&graph, 7); // beta = 7 >= (2 + eps) * 3
/// assert!(!result.partition.is_partial());
/// assert!(result.partition.validate(&graph).is_ok());
/// ```
pub fn h_partition(graph: &CsrGraph, beta: usize) -> HPartitionResult {
    let n = graph.num_nodes();
    let mut partition = BetaPartition::all_infinite(n, beta);
    let mut remaining_degree: Vec<usize> = (0..n).map(|v| graph.degree(v)).collect();
    let mut peeled = vec![false; n];
    let mut remaining = n;

    let mut rounds = 0usize;
    let mut peeled_per_round = Vec::new();

    while remaining > 0 {
        let layer: Vec<NodeId> = (0..n)
            .filter(|&v| !peeled[v] && remaining_degree[v] <= beta)
            .collect();
        if layer.is_empty() {
            break;
        }
        for &v in &layer {
            partition.set_layer(v, Layer::Finite(rounds));
            peeled[v] = true;
        }
        for &v in &layer {
            for &w in graph.neighbors(v) {
                if !peeled[w] {
                    remaining_degree[w] -= 1;
                }
            }
        }
        remaining -= layer.len();
        peeled_per_round.push(layer.len());
        rounds += 1;
    }

    HPartitionResult {
        partition,
        rounds,
        peeled_per_round,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::induced::natural_partition;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sparse_graph::generators;

    #[test]
    fn peeling_equals_natural_partition() {
        // The peeling algorithm *is* the construction of the natural
        // beta-partition, so the two must agree layer by layer.
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let graph = generators::preferential_attachment(400, 3, &mut rng);
        let beta = 7;
        let peeled = h_partition(&graph, beta);
        let natural = natural_partition(&graph, beta);
        assert_eq!(peeled.partition.layers(), natural.layers());
        assert_eq!(peeled.rounds, peeled.partition.size());
    }

    #[test]
    fn logarithmic_number_of_rounds_on_bounded_arboricity() {
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        for k in [1usize, 2, 4] {
            let graph = generators::forest_union(1_000, k, &mut rng);
            let beta = 2 * k + k.max(1); // roughly (2 + 1) * alpha (i.e. 3k) > 2 alpha
            let result = h_partition(&graph, beta);
            assert!(!result.partition.is_partial());
            assert!(result.partition.validate(&graph).is_ok());
            // Lemma 3.4: each round peels at least a 1 - 2k/beta >= 1/3
            // fraction, so the number of rounds is at most log_{3/2}(n) + 1.
            let bound = (1_000f64.ln() / (1.5f64).ln()).ceil() as usize + 1;
            assert!(
                result.rounds <= bound,
                "k = {k}: {} rounds exceeds bound {bound}",
                result.rounds
            );
        }
    }

    #[test]
    fn peeling_stalls_below_the_degeneracy() {
        let graph = generators::complete(6); // degeneracy 5
        let result = h_partition(&graph, 3);
        assert!(result.partition.is_partial());
        assert_eq!(result.rounds, 0);
        assert!(result.peeled_per_round.is_empty());
    }

    #[test]
    fn peeled_counts_sum_to_n_when_complete() {
        let graph = generators::grid(15, 15);
        let result = h_partition(&graph, 4);
        assert!(!result.partition.is_partial());
        assert_eq!(result.peeled_per_round.iter().sum::<usize>(), 225);
    }

    #[test]
    fn empty_graph_needs_no_rounds() {
        let graph = sparse_graph::CsrGraph::empty(0);
        let result = h_partition(&graph, 3);
        assert_eq!(result.rounds, 0);
        assert!(!result.partition.is_partial());
    }
}
