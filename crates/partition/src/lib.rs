//! # beta-partition
//!
//! β-partitions and the algorithms that compute them, reproducing Sections
//! 3–5 of *Adaptive Massively Parallel Coloring in Sparse Graphs*
//! (PODC 2024).
//!
//! A **β-partition** (Definition 3.5) splits the vertex set into layers such
//! that every node has at most `β` neighbors in its own or a higher layer.
//! Orienting edges from lower to higher layers yields an acyclic orientation
//! of out-degree ≤ β, which the coloring algorithms of the companion crate
//! `arbo-coloring` consume.
//!
//! The crate provides, bottom-up:
//!
//! * [`Layer`] and [`BetaPartition`] — the partition structures with
//!   validation (Definition 3.5),
//! * [`induced_partition`] / [`natural_partition`] — the `S`-induced and
//!   natural β-partitions of Definitions 3.6 and 3.12,
//! * [`dependency_set`] — dependency graphs `D(σ, v)` of Definition 3.9,
//! * [`CoinGame`] — the `(x, β, F)`-coin dropping game of Section 4.1
//!   (Algorithm 1) driven through the LCA adjacency oracle,
//! * [`partial_partition_lca`] — the sublinear deterministic LCA of
//!   Lemma 4.7 / Remark 4.8 producing a partial β-partition with per-node
//!   proofs,
//! * [`h_partition`] — the Barenboim–Elkin peeling baseline (and large-α
//!   fallback),
//! * [`ampc_beta_partition`] — the AMPC algorithm of Theorem 1.2 assembling
//!   a complete β-partition from recursive LCA invocations,
//! * [`ampc_beta_partition_unknown_arboricity`] — the arboricity guessing
//!   scheme of Lemma 5.1.
//!
//! ```
//! use beta_partition::{ampc_beta_partition, PartitionParams};
//! use sparse_graph::generators;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let graph = generators::forest_union(400, 2, &mut rng); // arboricity <= 2
//! let params = PartitionParams::new(6).with_x(4); // beta = 6 >= (2 + eps) * 2
//! let result = ampc_beta_partition(&graph, &params).unwrap();
//! assert!(result.partition.validate(&graph).is_ok());
//! assert!(!result.partition.is_partial());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ampc_partition;
mod beta;
mod coin_game;
mod dependency;
mod guessing;
mod h_partition;
mod induced;
mod layer;
mod lca;
mod merge;

pub use ampc_partition::{
    ampc_beta_partition, ampc_beta_partition_traced, AmpcPartitionResult, PartitionError,
    PartitionParams,
};
pub use beta::BetaPartition;
pub use coin_game::{CoinGame, CoinGameConfig, CoinGameResult};
pub use dependency::{dependency_set, dependency_size};
pub use guessing::{ampc_beta_partition_unknown_arboricity, GuessingResult};
pub use h_partition::{h_partition, HPartitionResult};
pub use induced::{induced_partition, natural_partition};
pub use layer::Layer;
pub use lca::{lca_for_all_nodes, partial_partition_lca, LcaPartitionOutput};
pub use merge::merge_min;
