//! (Partial) β-partitions: representation and validation (Definition 3.5).

use serde::{Deserialize, Serialize};
use sparse_graph::{CsrGraph, NodeId, Orientation};

use crate::layer::Layer;

/// A (partial) β-partition of a graph (Definition 3.5).
///
/// `λ : V → N ∪ {∞}` such that every node with a finite layer has at most `β`
/// neighbors in its own or a higher layer (nodes with layer `∞` count towards
/// that budget). If some node has layer `∞` the partition is *partial*.
///
/// The structure stores the layer assignment and the parameter `β`;
/// [`BetaPartition::validate`] checks the defining property against a graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BetaPartition {
    beta: usize,
    layers: Vec<Layer>,
}

impl BetaPartition {
    /// Creates a partition on `n` nodes with every node in the `∞` layer.
    pub fn all_infinite(n: usize, beta: usize) -> Self {
        BetaPartition {
            beta,
            layers: vec![Layer::Infinite; n],
        }
    }

    /// Wraps an explicit layer assignment.
    pub fn from_layers(beta: usize, layers: Vec<Layer>) -> Self {
        BetaPartition { beta, layers }
    }

    /// The parameter `β`.
    pub fn beta(&self) -> usize {
        self.beta
    }

    /// Number of nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.layers.len()
    }

    /// The layer of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn layer(&self, v: NodeId) -> Layer {
        self.layers[v]
    }

    /// Sets the layer of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn set_layer(&mut self, v: NodeId, layer: Layer) {
        self.layers[v] = layer;
    }

    /// The full layer assignment, indexed by node.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Returns `true` if some node is in the `∞` layer.
    pub fn is_partial(&self) -> bool {
        self.layers.iter().any(|l| l.is_infinite())
    }

    /// Nodes with a finite layer.
    pub fn finite_nodes(&self) -> Vec<NodeId> {
        self.layers
            .iter()
            .enumerate()
            .filter_map(|(v, l)| if l.is_finite() { Some(v) } else { None })
            .collect()
    }

    /// Nodes in the `∞` layer.
    pub fn infinite_nodes(&self) -> Vec<NodeId> {
        self.layers
            .iter()
            .enumerate()
            .filter_map(|(v, l)| if l.is_infinite() { Some(v) } else { None })
            .collect()
    }

    /// The number of *distinct finite* layers — the "size" of the partition
    /// in the paper's terminology.
    pub fn size(&self) -> usize {
        let mut finite: Vec<usize> = self.layers.iter().filter_map(|l| l.finite()).collect();
        finite.sort_unstable();
        finite.dedup();
        finite.len()
    }

    /// The largest finite layer index, or `None` if no node has a finite
    /// layer.
    pub fn max_finite_layer(&self) -> Option<usize> {
        self.layers.iter().filter_map(|l| l.finite()).max()
    }

    /// Checks the defining property of Definition 3.5: every node with a
    /// finite layer has at most `β` neighbors in an equal or higher layer
    /// (with `∞` counting as higher).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violating node.
    pub fn validate(&self, graph: &CsrGraph) -> Result<(), String> {
        if graph.num_nodes() != self.num_nodes() {
            return Err(format!(
                "partition covers {} nodes but the graph has {}",
                self.num_nodes(),
                graph.num_nodes()
            ));
        }
        for v in graph.nodes() {
            let Layer::Finite(layer_v) = self.layers[v] else {
                continue;
            };
            let higher_or_equal = graph
                .neighbors(v)
                .iter()
                .filter(|&&w| self.layers[w] >= Layer::Finite(layer_v))
                .count();
            if higher_or_equal > self.beta {
                return Err(format!(
                    "node {v} (layer {layer_v}) has {higher_or_equal} neighbors in equal or \
                     higher layers, exceeding beta = {}",
                    self.beta
                ));
            }
        }
        Ok(())
    }

    /// Merges another (partial) β-partition into this one by taking the
    /// node-wise minimum layer — the closure operation of Lemma 4.10, which
    /// preserves the partial β-partition property.
    ///
    /// # Panics
    ///
    /// Panics if the two partitions cover different node counts.
    pub fn merge_min_with(&mut self, other: &BetaPartition) {
        assert_eq!(
            self.num_nodes(),
            other.num_nodes(),
            "cannot merge partitions over different node sets"
        );
        for (mine, theirs) in self.layers.iter_mut().zip(other.layers.iter()) {
            *mine = (*mine).min(*theirs);
        }
    }

    /// Returns a copy with every finite layer shifted up by `offset`
    /// (used when the AMPC algorithm appends the layers of successive
    /// recursion levels, Theorem 1.2).
    pub fn shifted(&self, offset: usize) -> BetaPartition {
        BetaPartition {
            beta: self.beta,
            layers: self.layers.iter().map(|l| l.shifted(offset)).collect(),
        }
    }

    /// Derives the acyclic orientation induced by the partition: edges point
    /// from lower to higher layers, ties broken towards the larger node id
    /// (paper Contribution 2).
    ///
    /// # Errors
    ///
    /// Returns an error if the partition is partial (some node has layer
    /// `∞`), since the orientation is only defined for complete partitions.
    pub fn orientation(&self, graph: &CsrGraph) -> Result<Orientation, String> {
        if self.is_partial() {
            return Err("cannot orient a partial beta-partition (some layers are ∞)".to_string());
        }
        if graph.num_nodes() != self.num_nodes() {
            return Err("partition and graph cover different node sets".to_string());
        }
        Ok(Orientation::from_total_order(graph, |v| {
            self.layers[v].finite().expect("partition is complete")
        }))
    }

    /// The maximum out-degree of the induced orientation, i.e. the effective
    /// `β` achieved (for reporting; may be smaller than [`Self::beta`]).
    pub fn effective_out_degree(&self, graph: &CsrGraph) -> Result<usize, String> {
        Ok(self.orientation(graph)?.max_out_degree())
    }

    /// Histogram of layer populations: entry `i` counts the nodes on finite
    /// layer `i`; the returned tuple's second element counts `∞` nodes.
    pub fn layer_histogram(&self) -> (Vec<usize>, usize) {
        let max = self.max_finite_layer().map_or(0, |m| m + 1);
        let mut histogram = vec![0usize; max];
        let mut infinite = 0usize;
        for layer in &self.layers {
            match layer {
                Layer::Finite(i) => histogram[*i] += 1,
                Layer::Infinite => infinite += 1,
            }
        }
        (histogram, infinite)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> CsrGraph {
        CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn validation_accepts_valid_partitions() {
        let g = path4();
        // Everything on one layer: every node has <= 2 neighbors >= its layer.
        let p = BetaPartition::from_layers(2, vec![Layer::Finite(0); 4]);
        assert!(p.validate(&g).is_ok());
        // beta = 1 fails for the middle nodes.
        let p = BetaPartition::from_layers(1, vec![Layer::Finite(0); 4]);
        assert!(p.validate(&g).is_err());
        // ... but layering the path alternately works for beta = 1? No:
        // node on the lower layer still has 2 higher neighbors. Check a
        // correct 1-partition: peel endpoints first.
        let p = BetaPartition::from_layers(
            1,
            vec![
                Layer::Finite(0),
                Layer::Finite(1),
                Layer::Finite(1),
                Layer::Finite(0),
            ],
        );
        assert!(p.validate(&g).is_ok());
    }

    #[test]
    fn infinite_layers_count_towards_budget() {
        let g = CsrGraph::from_edges(3, [(0, 1), (0, 2)]);
        // Node 0 on layer 0 with two ∞ neighbors: needs beta >= 2.
        let layers = vec![Layer::Finite(0), Layer::Infinite, Layer::Infinite];
        assert!(BetaPartition::from_layers(2, layers.clone())
            .validate(&g)
            .is_ok());
        assert!(BetaPartition::from_layers(1, layers).validate(&g).is_err());
    }

    #[test]
    fn size_counts_distinct_finite_layers() {
        let p = BetaPartition::from_layers(
            3,
            vec![
                Layer::Finite(0),
                Layer::Finite(5),
                Layer::Finite(5),
                Layer::Infinite,
            ],
        );
        assert_eq!(p.size(), 2);
        assert_eq!(p.max_finite_layer(), Some(5));
        assert!(p.is_partial());
        assert_eq!(p.finite_nodes(), vec![0, 1, 2]);
        assert_eq!(p.infinite_nodes(), vec![3]);
        let (histogram, infinite) = p.layer_histogram();
        assert_eq!(histogram[0], 1);
        assert_eq!(histogram[5], 2);
        assert_eq!(infinite, 1);
    }

    #[test]
    fn merge_min_takes_nodewise_minimum() {
        let mut a = BetaPartition::from_layers(
            2,
            vec![Layer::Finite(4), Layer::Infinite, Layer::Finite(1)],
        );
        let b = BetaPartition::from_layers(
            2,
            vec![Layer::Finite(2), Layer::Finite(7), Layer::Infinite],
        );
        a.merge_min_with(&b);
        assert_eq!(a.layer(0), Layer::Finite(2));
        assert_eq!(a.layer(1), Layer::Finite(7));
        assert_eq!(a.layer(2), Layer::Finite(1));
    }

    #[test]
    fn shifted_moves_finite_layers_only() {
        let p = BetaPartition::from_layers(2, vec![Layer::Finite(1), Layer::Infinite]);
        let shifted = p.shifted(10);
        assert_eq!(shifted.layer(0), Layer::Finite(11));
        assert_eq!(shifted.layer(1), Layer::Infinite);
        assert_eq!(shifted.beta(), 2);
    }

    #[test]
    fn orientation_requires_complete_partition() {
        let g = path4();
        let partial = BetaPartition::all_infinite(4, 2);
        assert!(partial.orientation(&g).is_err());

        let complete = BetaPartition::from_layers(
            1,
            vec![
                Layer::Finite(0),
                Layer::Finite(1),
                Layer::Finite(1),
                Layer::Finite(0),
            ],
        );
        let orientation = complete.orientation(&g).unwrap();
        assert!(orientation.is_acyclic());
        assert!(orientation.covers_graph(&g));
        assert!(orientation.max_out_degree() <= 1);
        assert_eq!(complete.effective_out_degree(&g).unwrap(), 1);
    }

    #[test]
    fn validate_rejects_mismatched_sizes() {
        let g = path4();
        let p = BetaPartition::all_infinite(3, 2);
        assert!(p.validate(&g).is_err());
    }

    #[test]
    #[should_panic(expected = "different node sets")]
    fn merge_requires_same_node_count() {
        let mut a = BetaPartition::all_infinite(2, 1);
        let b = BetaPartition::all_infinite(3, 1);
        a.merge_min_with(&b);
    }
}
