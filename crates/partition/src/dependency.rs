//! Dependency graphs `D(σ, v)` (Definition 3.9).

use std::collections::BTreeSet;

use sparse_graph::{CsrGraph, NodeId};

use crate::beta::BetaPartition;
use crate::layer::Layer;

/// Computes the node set `D(σ, v)` of the dependency graph of `v` with
/// respect to the (partial) β-partition `σ` (Definition 3.9):
///
/// * `σ(v) = ∞`  → the empty set,
/// * `σ(v) = 0`  → `{v}`,
/// * otherwise   → `{v}` together with the dependency sets of all neighbors
///   on a strictly smaller layer.
///
/// Equivalently, `D(σ, v)` contains exactly the nodes reachable from `v` by
/// paths of strictly decreasing layers. The returned set is sorted.
///
/// # Examples
///
/// ```
/// use beta_partition::{dependency_set, natural_partition};
/// use sparse_graph::generators;
///
/// let star = generators::star(5);
/// let sigma = natural_partition(&star, 1);
/// // The hub (layer 1) depends on all its leaves (layer 0).
/// assert_eq!(dependency_set(&star, &sigma, 0), vec![0, 1, 2, 3, 4]);
/// // A leaf depends only on itself.
/// assert_eq!(dependency_set(&star, &sigma, 3), vec![3]);
/// ```
pub fn dependency_set(graph: &CsrGraph, sigma: &BetaPartition, v: NodeId) -> Vec<NodeId> {
    if sigma.layer(v).is_infinite() {
        return Vec::new();
    }
    let mut result: BTreeSet<NodeId> = BTreeSet::new();
    let mut stack = vec![v];
    result.insert(v);
    while let Some(u) = stack.pop() {
        let Layer::Finite(layer_u) = sigma.layer(u) else {
            continue;
        };
        if layer_u == 0 {
            continue;
        }
        for &w in graph.neighbors(u) {
            if let Layer::Finite(layer_w) = sigma.layer(w) {
                if layer_w < layer_u && result.insert(w) {
                    stack.push(w);
                }
            }
        }
    }
    result.into_iter().collect()
}

/// The size `|D(σ, v)|` of the dependency graph of `v`.
pub fn dependency_size(graph: &CsrGraph, sigma: &BetaPartition, v: NodeId) -> usize {
    dependency_set(graph, sigma, v).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::induced::natural_partition;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sparse_graph::generators;

    #[test]
    fn infinite_nodes_have_empty_dependency() {
        let g = generators::complete(5);
        let sigma = natural_partition(&g, 2); // stalls: everything ∞
        for v in g.nodes() {
            assert!(dependency_set(&g, &sigma, v).is_empty());
        }
    }

    #[test]
    fn layer_zero_nodes_depend_on_themselves_only() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = generators::forest_union(150, 2, &mut rng);
        let sigma = natural_partition(&g, 5);
        for v in g.nodes() {
            if sigma.layer(v) == Layer::Finite(0) {
                assert_eq!(dependency_set(&g, &sigma, v), vec![v]);
            }
        }
    }

    #[test]
    fn dependency_sets_are_nested() {
        // Observation 3.10: w ∈ D(v) implies D(w) ⊆ D(v).
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = generators::forest_union(120, 2, &mut rng);
        let sigma = natural_partition(&g, 5);
        for v in (0..g.num_nodes()).step_by(7) {
            let dv: std::collections::BTreeSet<_> =
                dependency_set(&g, &sigma, v).into_iter().collect();
            for &w in dv.iter().take(10) {
                let dw: std::collections::BTreeSet<_> =
                    dependency_set(&g, &sigma, w).into_iter().collect();
                assert!(dw.is_subset(&dv), "D({w}) not nested in D({v})");
            }
        }
    }

    #[test]
    fn few_neighbors_outside_dependency_graph() {
        // Lemma 3.11: for sigma(v) finite, |N(v) \ D(sigma, v)| <= beta.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generators::preferential_attachment(300, 3, &mut rng);
        let beta = 7;
        let sigma = natural_partition(&g, beta);
        for v in g.nodes() {
            if sigma.layer(v).is_finite() {
                let dv: std::collections::BTreeSet<_> =
                    dependency_set(&g, &sigma, v).into_iter().collect();
                let outside = g.neighbors(v).iter().filter(|w| !dv.contains(w)).count();
                assert!(
                    outside <= beta,
                    "node {v} has {outside} neighbors outside D(v)"
                );
            }
        }
    }

    #[test]
    fn kary_tree_root_depends_on_everything() {
        // The canonical deep-dependency instance (Figure 2 of the paper): in
        // a complete (beta + 1)-ary tree the root's dependency graph is the
        // whole tree and the natural partition has depth + 1 layers.
        let beta = 3;
        let g = generators::complete_kary_tree(beta + 1, 4);
        let sigma = natural_partition(&g, beta);
        assert!(!sigma.is_partial());
        assert_eq!(sigma.size(), 5);
        assert_eq!(sigma.layer(0), Layer::Finite(4));
        assert_eq!(dependency_size(&g, &sigma, 0), g.num_nodes());
        // Leaves depend only on themselves.
        let leaf = g.num_nodes() - 1;
        assert_eq!(dependency_set(&g, &sigma, leaf), vec![leaf]);
    }
}
