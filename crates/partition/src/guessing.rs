//! Arboricity guessing (Lemma 5.1): β-partitioning without knowing `α`.
//!
//! Theorem 1.2 assumes the arboricity `α` is known. Lemma 5.1 removes the
//! assumption with a two-phase guessing scheme:
//!
//! 1. **Sequential doubly-exponential phase.** Run the partitioner with the
//!    guesses `α_i = 2^{2^i}` until one succeeds; because the guesses grow
//!    doubly exponentially, the total round cost is dominated by the last
//!    (successful) run and the successful guess `a_k` satisfies `a_k < α²`.
//! 2. **Parallel refinement phase.** Run the partitioner *in parallel* with
//!    the guesses `√a_k · (1 + ε)^j`; some guess is within a `(1 + ε)`
//!    factor of the true arboricity, and the smallest successful instance is
//!    returned. In AMPC the parallel instances share rounds, so the phase
//!    costs only the maximum round count of any instance (at the price of an
//!    `O(log n)` factor in total space).

use sparse_graph::CsrGraph;

use crate::ampc_partition::{
    ampc_beta_partition, AmpcPartitionResult, PartitionError, PartitionParams,
};

/// Result of the arboricity-oblivious partitioner.
#[derive(Debug, Clone)]
pub struct GuessingResult {
    /// The partition produced by the best (smallest successful) guess.
    pub result: AmpcPartitionResult,
    /// The arboricity guess that produced [`GuessingResult::result`].
    pub chosen_alpha: usize,
    /// The `β` value used by the chosen instance.
    pub chosen_beta: usize,
    /// Rounds spent in the sequential doubly-exponential phase (summed, as
    /// the instances run one after the other).
    pub sequential_rounds: usize,
    /// Rounds of the parallel refinement phase (the maximum over instances,
    /// as they run concurrently).
    pub parallel_rounds: usize,
    /// Every guess tried, with its β, whether it succeeded and how many
    /// rounds it used.
    pub attempts: Vec<GuessAttempt>,
}

/// One attempted arboricity guess.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuessAttempt {
    /// The guessed arboricity.
    pub alpha: usize,
    /// The β derived from the guess.
    pub beta: usize,
    /// Whether the partitioner completed with this guess.
    pub success: bool,
    /// Rounds used (until completion or failure).
    pub rounds: usize,
    /// `true` for the sequential phase, `false` for the parallel phase.
    pub sequential: bool,
}

impl GuessingResult {
    /// Total AMPC rounds charged by the scheme: the sequential phase is paid
    /// in full, the parallel phase costs its maximum instance.
    pub fn total_rounds(&self) -> usize {
        self.sequential_rounds + self.parallel_rounds
    }
}

fn beta_for_guess(alpha: usize, epsilon: f64) -> usize {
    (((2.0 + epsilon) * alpha as f64).ceil() as usize).max(1)
}

fn run_guess(
    graph: &CsrGraph,
    alpha: usize,
    epsilon: f64,
    template: &PartitionParams,
) -> (usize, Result<AmpcPartitionResult, PartitionError>) {
    let beta = beta_for_guess(alpha, epsilon);
    let mut params = *template;
    params.beta = beta;
    let outcome = ampc_beta_partition(graph, &params);
    (beta, outcome)
}

/// Computes a β-partition without knowing the arboricity (Lemma 5.1).
///
/// `epsilon` is the slack in `β = (2 + ε)·guess`; `template` carries every
/// other parameter (coin budget, round limits, …) and its `beta` field is
/// ignored.
///
/// # Errors
///
/// Returns the last failure if even the guess `α = n` does not succeed,
/// which only happens if the template's round limit is too small.
///
/// # Examples
///
/// ```
/// use beta_partition::{ampc_beta_partition_unknown_arboricity, PartitionParams};
/// use sparse_graph::generators;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
/// let graph = generators::forest_union(300, 3, &mut rng); // true alpha <= 3
/// let template = PartitionParams::new(0).with_x(4);
/// let result = ampc_beta_partition_unknown_arboricity(&graph, 0.5, &template).unwrap();
/// assert!(result.result.partition.validate(&graph).is_ok());
/// // The refinement phase gets within a constant factor of the truth.
/// assert!(result.chosen_alpha <= 9);
/// ```
pub fn ampc_beta_partition_unknown_arboricity(
    graph: &CsrGraph,
    epsilon: f64,
    template: &PartitionParams,
) -> Result<GuessingResult, PartitionError> {
    assert!(epsilon > 0.0, "epsilon must be positive");
    let n = graph.num_nodes().max(2);
    let mut attempts = Vec::new();
    let mut sequential_rounds = 0usize;

    // Phase 1: doubly exponential guesses 2, 4, 16, 256, ...
    let mut exponent = 1u32;
    let mut first_success: Option<(usize, AmpcPartitionResult)> = None;
    let mut last_error = PartitionError::Stalled {
        remaining: graph.num_nodes(),
    };
    loop {
        let alpha = 2usize.saturating_pow(exponent).min(n);
        let (beta, outcome) = run_guess(graph, alpha, epsilon, template);
        match outcome {
            Ok(result) => {
                sequential_rounds += result.rounds;
                attempts.push(GuessAttempt {
                    alpha,
                    beta,
                    success: true,
                    rounds: result.rounds,
                    sequential: true,
                });
                first_success = Some((alpha, result));
                break;
            }
            Err(err) => {
                let rounds = match &err {
                    PartitionError::RoundLimitExceeded { limit, .. } => *limit,
                    _ => 1,
                };
                sequential_rounds += rounds;
                attempts.push(GuessAttempt {
                    alpha,
                    beta,
                    success: false,
                    rounds,
                    sequential: true,
                });
                last_error = err;
            }
        }
        if alpha >= n {
            break;
        }
        exponent = exponent.saturating_mul(2);
    }

    let Some((coarse_alpha, coarse_result)) = first_success else {
        return Err(last_error);
    };

    // Phase 2: parallel refinement with guesses sqrt(a_k) * (1 + eps)^j.
    let mut best: (usize, usize, AmpcPartitionResult) = (
        coarse_alpha,
        beta_for_guess(coarse_alpha, epsilon),
        coarse_result,
    );
    let mut parallel_rounds = 0usize;
    let mut guess = (coarse_alpha as f64).sqrt();
    let mut tried = std::collections::BTreeSet::new();
    while guess < coarse_alpha as f64 + 1.0 {
        let alpha = (guess.ceil() as usize).clamp(1, coarse_alpha);
        guess *= 1.0 + epsilon;
        if !tried.insert(alpha) {
            continue;
        }
        let (beta, outcome) = run_guess(graph, alpha, epsilon, template);
        match outcome {
            Ok(result) => {
                parallel_rounds = parallel_rounds.max(result.rounds);
                attempts.push(GuessAttempt {
                    alpha,
                    beta,
                    success: true,
                    rounds: result.rounds,
                    sequential: false,
                });
                // Prefer the smallest successful guess (fewest colors later).
                if alpha < best.0 {
                    best = (alpha, beta, result);
                }
            }
            Err(err) => {
                let rounds = match &err {
                    PartitionError::RoundLimitExceeded { limit, .. } => *limit,
                    _ => 1,
                };
                parallel_rounds = parallel_rounds.max(rounds);
                attempts.push(GuessAttempt {
                    alpha,
                    beta,
                    success: false,
                    rounds,
                    sequential: false,
                });
            }
        }
    }

    Ok(GuessingResult {
        chosen_alpha: best.0,
        chosen_beta: best.1,
        result: best.2,
        sequential_rounds,
        parallel_rounds,
        attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sparse_graph::generators;

    #[test]
    fn finds_a_partition_on_forests_without_knowing_alpha() {
        let mut rng = ChaCha8Rng::seed_from_u64(51);
        let graph = generators::forest_union(250, 1, &mut rng);
        let template = PartitionParams::new(0).with_x(4);
        let result = ampc_beta_partition_unknown_arboricity(&graph, 1.0, &template).unwrap();
        assert!(!result.result.partition.is_partial());
        assert!(result.result.partition.validate(&graph).is_ok());
        // True arboricity is 1; the refinement must not settle far above it.
        assert!(
            result.chosen_alpha <= 4,
            "chose alpha = {}",
            result.chosen_alpha
        );
        assert!(result.total_rounds() >= result.result.rounds);
        assert!(result.attempts.iter().any(|a| a.success));
    }

    #[test]
    fn refinement_improves_on_the_coarse_guess() {
        let mut rng = ChaCha8Rng::seed_from_u64(53);
        // Arboricity <= 4 graph: the doubly exponential phase first succeeds
        // at the guess 4 (or 16 if 2/4 fail), refinement should go lower than
        // the coarse guess when possible.
        let graph = generators::forest_union(300, 4, &mut rng);
        let template = PartitionParams::new(0).with_x(4);
        let result = ampc_beta_partition_unknown_arboricity(&graph, 0.5, &template).unwrap();
        let coarse_success = result
            .attempts
            .iter()
            .find(|a| a.sequential && a.success)
            .expect("sequential phase succeeded");
        assert!(result.chosen_alpha <= coarse_success.alpha);
        assert!(result.result.partition.validate(&graph).is_ok());
    }

    #[test]
    fn sequential_phase_records_failures() {
        // K9 has arboricity 5 > 4, so the guesses 2 and 4 (with eps small
        // enough) may fail before 16 succeeds; either way every attempt is
        // recorded and the final result is valid.
        let graph = generators::complete(9);
        let template = PartitionParams::new(0).with_x(4);
        let result = ampc_beta_partition_unknown_arboricity(&graph, 0.1, &template).unwrap();
        assert!(result.result.partition.validate(&graph).is_ok());
        assert!(!result.attempts.is_empty());
        let sequential: Vec<_> = result.attempts.iter().filter(|a| a.sequential).collect();
        assert!(sequential.last().unwrap().success);
        assert!(sequential.iter().all(|a| a.beta >= 2 * a.alpha));
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn rejects_non_positive_epsilon() {
        let graph = generators::path(4);
        let template = PartitionParams::new(0);
        let _ = ampc_beta_partition_unknown_arboricity(&graph, 0.0, &template);
    }
}
