//! The `(x, β, F)`-coin dropping game (Section 4.1, Algorithm 1).
//!
//! The game is played from the perspective of a single node `v` issuing LCA
//! queries. It maintains a growing explored set `S_v` and, in every
//! *super-iteration*,
//!
//! 1. recomputes the `S_v`-induced β-partition `σ_{S_v,β}` and the
//!    forwarding sets `F(σ_{S_v,β}, u)` (Definition 4.1) from the explored
//!    knowledge,
//! 2. gives `x` coins to `v`,
//! 3. repeatedly lets every explored node holding at least `|F|` coins
//!    forward an equal share of all its coins to its forwarding set,
//! 4. adds every unexplored node that received a coin to `S_v`.
//!
//! The forwarding sets prefer neighbors with the *highest* `σ` values, which
//! is the adaptive rule that makes the exploration provably reach new parts
//! of the dependency graph (Lemmas 4.2 and 4.3).

use std::collections::HashMap;

use ampc_model::{LcaOracle, ModelError};
use sparse_graph::NodeId;

use crate::layer::Layer;

/// Parameters of the `(x, β, F)`-coin dropping game.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoinGameConfig {
    /// The coin budget `x`; the game runs `x²` super-iterations (unless
    /// overridden) and explores at most `O(x³)` nodes.
    pub x: usize,
    /// The out-degree parameter `β`.
    pub beta: usize,
    /// Number of super-iterations; defaults to `x²` (the paper's value) when
    /// `None`. Lowering it trades progress speed for simulation time without
    /// affecting the validity of the output (only how many nodes get a
    /// finite layer).
    pub super_iterations: Option<usize>,
    /// Number of coin-forwarding iterations inside one super-iteration;
    /// defaults to `⌈log_{β+1} x⌉ + 2`, which is enough for coins to reach
    /// the end of any decreasing-layer path the analysis of Lemma 4.2 uses.
    pub flow_iterations: Option<usize>,
    /// Cap on the layers the LCA reports: layers above the cap are treated
    /// as `∞`. Defaults to `max(1, ⌊log_{β+1} x⌋)` as in Lemma 4.7.
    pub layer_cap: Option<usize>,
}

impl CoinGameConfig {
    /// Creates a configuration with the paper's default derived parameters.
    pub fn new(x: usize, beta: usize) -> Self {
        CoinGameConfig {
            x: x.max(2),
            beta,
            super_iterations: None,
            flow_iterations: None,
            layer_cap: None,
        }
    }

    /// Overrides the number of super-iterations.
    pub fn with_super_iterations(mut self, super_iterations: usize) -> Self {
        self.super_iterations = Some(super_iterations);
        self
    }

    /// Overrides the number of flow iterations per super-iteration.
    pub fn with_flow_iterations(mut self, flow_iterations: usize) -> Self {
        self.flow_iterations = Some(flow_iterations);
        self
    }

    /// Overrides the reported-layer cap.
    pub fn with_layer_cap(mut self, layer_cap: usize) -> Self {
        self.layer_cap = Some(layer_cap);
        self
    }

    /// Effective number of super-iterations (`x²` by default).
    pub fn effective_super_iterations(&self) -> usize {
        self.super_iterations.unwrap_or(self.x * self.x)
    }

    /// Effective number of flow iterations (`⌈log_{β+1} x⌉ + 2` by default).
    pub fn effective_flow_iterations(&self) -> usize {
        self.flow_iterations
            .unwrap_or_else(|| log_base_ceil(self.x, self.beta + 1) + 2)
    }

    /// Effective layer cap (`max(1, ⌊log_{β+1} x⌋)` by default).
    pub fn effective_layer_cap(&self) -> usize {
        self.layer_cap
            .unwrap_or_else(|| log_base_floor(self.x, self.beta + 1).max(1))
    }
}

/// `⌈log_base(value)⌉` for integers (at least 1).
fn log_base_ceil(value: usize, base: usize) -> usize {
    let base = base.max(2);
    let mut power = base;
    let mut result = 1;
    while power < value {
        power = power.saturating_mul(base);
        result += 1;
    }
    result
}

/// `⌊log_base(value)⌋` for integers (0 when `value < base`).
fn log_base_floor(value: usize, base: usize) -> usize {
    let base = base.max(2);
    let mut power = base;
    let mut result = 0;
    while power <= value {
        power = power.saturating_mul(base);
        result += 1;
    }
    result
}

/// Everything the game knows about an explored node.
#[derive(Debug, Clone)]
struct MemberInfo {
    /// Degree in the (sub)graph the oracle exposes.
    degree: usize,
    /// Full adjacency list (queried when the node joined `S_v`).
    neighbors: Vec<NodeId>,
}

/// Outcome of one full run of the coin dropping game for a root node.
#[derive(Debug, Clone)]
pub struct CoinGameResult {
    /// The node the game was played for.
    pub root: NodeId,
    /// The explored set `S_v`, sorted by node id.
    pub explored: Vec<NodeId>,
    /// The final `S_v`-induced β-partition restricted to its finite layers.
    pub sigma: HashMap<NodeId, usize>,
    /// `σ_{S_v,β}(root)` (uncapped).
    pub sigma_root: Layer,
    /// Number of LCA queries issued.
    pub queries: usize,
    /// Number of super-iterations actually executed (early exit stops the
    /// game as soon as a super-iteration adds no new node).
    pub super_iterations_run: usize,
    /// Number of edges of `G[S_v]` discovered.
    pub discovered_edges: usize,
}

/// The `(x, β, F)`-coin dropping game bound to an LCA oracle.
///
/// # Examples
///
/// ```
/// use ampc_model::LcaOracle;
/// use beta_partition::{CoinGame, CoinGameConfig, Layer};
/// use sparse_graph::generators;
///
/// let graph = generators::star(50); // hub 0, leaves 1..50
/// let oracle = LcaOracle::new(&graph);
/// let config = CoinGameConfig::new(4, 3);
/// let result = CoinGame::new(&oracle, config).run(0)?;
/// // The hub's layer in the natural 3-partition is 1, and the game finds it.
/// assert_eq!(result.sigma_root, Layer::Finite(1));
/// # Ok::<(), ampc_model::ModelError>(())
/// ```
#[derive(Debug)]
pub struct CoinGame<'o, 'g> {
    oracle: &'o LcaOracle<'g>,
    config: CoinGameConfig,
    members: HashMap<NodeId, MemberInfo>,
    insertion_order: Vec<NodeId>,
}

impl<'o, 'g> CoinGame<'o, 'g> {
    /// Binds the game to an oracle and a configuration.
    pub fn new(oracle: &'o LcaOracle<'g>, config: CoinGameConfig) -> Self {
        CoinGame {
            oracle,
            config,
            members: HashMap::new(),
            insertion_order: Vec::new(),
        }
    }

    /// Plays the game for `root` and returns the resulting exploration and
    /// induced partition.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelError::QueryBudgetExceeded`] if the oracle has a
    /// budget and the game exhausts it.
    pub fn run(mut self, root: NodeId) -> Result<CoinGameResult, ModelError> {
        let queries_before = self.oracle.queries_used();
        self.add_member(root)?;

        let max_super_iterations = self.config.effective_super_iterations();
        let flow_iterations = self.config.effective_flow_iterations();
        let mut super_iterations_run = 0usize;

        for _ in 0..max_super_iterations {
            super_iterations_run += 1;
            let sigma = self.local_induced_partition();
            let forwarding: HashMap<NodeId, Vec<NodeId>> = self
                .members
                .keys()
                .map(|&u| (u, self.forwarding_set(u, &sigma)))
                .collect();

            // Coin flow: fractional coins, root starts with x. A BTreeMap
            // keeps the iteration (and therefore floating-point summation)
            // order deterministic.
            let mut coins: std::collections::BTreeMap<NodeId, f64> =
                std::collections::BTreeMap::new();
            coins.insert(root, self.config.x as f64);
            for _ in 0..flow_iterations {
                let mut next: std::collections::BTreeMap<NodeId, f64> =
                    std::collections::BTreeMap::new();
                let mut moved = false;
                for (&holder, &amount) in &coins {
                    let forwarded = match forwarding.get(&holder) {
                        Some(targets) if !targets.is_empty() && amount >= targets.len() as f64 => {
                            let share = amount / targets.len() as f64;
                            for &target in targets {
                                *next.entry(target).or_insert(0.0) += share;
                            }
                            moved = true;
                            true
                        }
                        _ => false,
                    };
                    if !forwarded {
                        *next.entry(holder).or_insert(0.0) += amount;
                    }
                }
                coins = next;
                if !moved {
                    break;
                }
            }

            // Step 4: recruit every unexplored node holding coins.
            let mut recruits: Vec<NodeId> = coins
                .iter()
                .filter(|&(node, &amount)| amount > 0.0 && !self.members.contains_key(node))
                .map(|(&node, _)| node)
                .collect();
            recruits.sort_unstable();
            if recruits.is_empty() {
                // The next super-iteration would be identical: stop early.
                break;
            }
            for node in recruits {
                self.add_member(node)?;
            }
        }

        let sigma = self.local_induced_partition();
        let sigma_root = sigma
            .get(&root)
            .copied()
            .map(Layer::Finite)
            .unwrap_or(Layer::Infinite);
        let mut explored = self.insertion_order.clone();
        explored.sort_unstable();
        let discovered_edges = self.discovered_edges();

        Ok(CoinGameResult {
            root,
            explored,
            sigma,
            sigma_root,
            queries: self.oracle.queries_used() - queries_before,
            super_iterations_run,
            discovered_edges,
        })
    }

    /// Adds `node` to `S_v`, querying its degree and full adjacency list.
    fn add_member(&mut self, node: NodeId) -> Result<(), ModelError> {
        if self.members.contains_key(&node) {
            return Ok(());
        }
        let neighbors = self.oracle.neighbors(node)?;
        self.members.insert(
            node,
            MemberInfo {
                degree: neighbors.len(),
                neighbors,
            },
        );
        self.insertion_order.push(node);
        Ok(())
    }

    /// Computes the `S_v`-induced β-partition over the explored knowledge
    /// (Definition 3.6 restricted to `S = S_v`): level-synchronous peeling
    /// on the count of `∞` neighbors (neighbors outside `S_v` always count).
    fn local_induced_partition(&self) -> HashMap<NodeId, usize> {
        let beta = self.config.beta;
        let mut infinite_neighbors: HashMap<NodeId, usize> = self
            .members
            .iter()
            .map(|(&u, info)| (u, info.degree))
            .collect();
        let mut assigned: HashMap<NodeId, usize> = HashMap::new();

        let mut current: Vec<NodeId> = self
            .members
            .keys()
            .copied()
            .filter(|u| infinite_neighbors[u] <= beta)
            .collect();
        current.sort_unstable();

        let mut level = 0usize;
        while !current.is_empty() {
            for &u in &current {
                assigned.insert(u, level);
            }
            let mut next = Vec::new();
            for &u in &current {
                for &w in &self.members[&u].neighbors {
                    if let Some(count) = infinite_neighbors.get_mut(&w) {
                        *count -= 1;
                        if !assigned.contains_key(&w) && *count == beta {
                            next.push(w);
                        }
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            current = next;
            level += 1;
        }
        assigned
    }

    /// The forwarding set `F(σ_{S_v}, u)` of Definition 4.1: the
    /// `min(deg(u), β + 1)` neighbors with the highest `σ` values.
    ///
    /// Neighbors outside `S_v` have `σ = ∞`; ties among `∞`-valued neighbors
    /// are broken in favor of *unexplored* nodes (driving the exploration
    /// towards new parts of the graph), then by node id, which keeps the
    /// algorithm deterministic. Any tie-break satisfies Definition 4.1.
    fn forwarding_set(&self, u: NodeId, sigma: &HashMap<NodeId, usize>) -> Vec<NodeId> {
        let info = &self.members[&u];
        let needed = info.degree.min(self.config.beta + 1);
        if needed == 0 {
            return Vec::new();
        }
        // Sort key (lexicographic, smaller is better):
        //   rank 0: sigma = ∞ and unexplored (fresh target)
        //   rank 1: sigma = ∞ and explored
        //   rank 2: finite sigma, larger sigma preferred (secondary key).
        let mut ranked: Vec<(u8, usize, NodeId)> = info
            .neighbors
            .iter()
            .map(|&w| {
                let (rank, secondary) = if !self.members.contains_key(&w) {
                    (0u8, 0usize)
                } else {
                    match sigma.get(&w) {
                        None => (1u8, 0usize),
                        Some(&layer) => (2u8, usize::MAX - layer),
                    }
                };
                (rank, secondary, w)
            })
            .collect();
        ranked.sort_unstable();
        ranked.truncate(needed);
        ranked.into_iter().map(|(_, _, w)| w).collect()
    }

    /// Number of edges of `G[S_v]` present in the explored knowledge.
    fn discovered_edges(&self) -> usize {
        self.members
            .values()
            .map(|info| {
                info.neighbors
                    .iter()
                    .filter(|w| self.members.contains_key(w))
                    .count()
            })
            .sum::<usize>()
            / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::induced::natural_partition;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sparse_graph::{generators, CsrGraph};

    fn play(graph: &CsrGraph, root: NodeId, config: CoinGameConfig) -> CoinGameResult {
        let oracle = LcaOracle::new(graph);
        CoinGame::new(&oracle, config).run(root).unwrap()
    }

    #[test]
    fn log_helpers() {
        assert_eq!(log_base_floor(1, 4), 0);
        assert_eq!(log_base_floor(4, 4), 1);
        assert_eq!(log_base_floor(63, 4), 2);
        assert_eq!(log_base_floor(64, 4), 3);
        assert_eq!(log_base_ceil(4, 4), 1);
        assert_eq!(log_base_ceil(5, 4), 2);
        assert_eq!(log_base_ceil(2, 2), 1);
    }

    #[test]
    fn config_defaults_follow_the_paper() {
        let config = CoinGameConfig::new(16, 3);
        assert_eq!(config.effective_super_iterations(), 256);
        assert_eq!(config.effective_flow_iterations(), 2 + 2);
        assert_eq!(config.effective_layer_cap(), 2);
        let overridden = config
            .with_super_iterations(10)
            .with_flow_iterations(5)
            .with_layer_cap(7);
        assert_eq!(overridden.effective_super_iterations(), 10);
        assert_eq!(overridden.effective_flow_iterations(), 5);
        assert_eq!(overridden.effective_layer_cap(), 7);
    }

    #[test]
    fn leaf_of_a_star_terminates_quickly() {
        let graph = generators::star(100);
        let result = play(&graph, 5, CoinGameConfig::new(4, 3));
        // The leaf has degree 1 <= beta, so sigma(leaf) = 0 immediately.
        assert_eq!(result.sigma_root, Layer::Finite(0));
        // Exploration stays bounded by the coin budget: at most x new nodes
        // per super-iteration over at most x^2 super-iterations.
        assert!(result.explored.len() <= 4 * 16 + 2);
        assert!(result.queries < 400);
    }

    #[test]
    fn hub_of_a_star_learns_its_natural_layer() {
        let graph = generators::star(40);
        let result = play(&graph, 0, CoinGameConfig::new(8, 3));
        let natural = natural_partition(&graph, 3);
        assert_eq!(result.sigma_root, natural.layer(0));
    }

    #[test]
    fn kary_tree_root_converges_to_natural_layer() {
        // beta = 3, arity 4, depth 2: the root's natural layer is 2 and its
        // dependency graph is the whole 21-node tree. Lemma 4.4 requires
        // x >= (beta + 1)^layer = 16 for the game to certify layer 2.
        let graph = generators::complete_kary_tree(4, 2);
        let natural = natural_partition(&graph, 3);
        assert_eq!(natural.layer(0), Layer::Finite(2));
        let result = play(&graph, 0, CoinGameConfig::new(16, 3));
        assert_eq!(result.sigma_root, Layer::Finite(2));
        // Lemma 4.4 precondition holds, so the game must have found the
        // dependency graph's layers exactly.
        assert!(result.explored.len() >= graph.num_nodes() / 2);
    }

    #[test]
    fn sigma_never_underestimates_the_natural_layer() {
        // Lemma 3.13: sigma_{S_v}(v) >= natural layer of v, for every run.
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let graph = generators::forest_union(150, 2, &mut rng);
        let beta = 5;
        let natural = natural_partition(&graph, beta);
        for root in (0..graph.num_nodes()).step_by(11) {
            let result = play(&graph, root, CoinGameConfig::new(4, beta));
            assert!(
                result.sigma_root >= natural.layer(root),
                "root {root}: game layer {:?} below natural {:?}",
                result.sigma_root,
                natural.layer(root)
            );
        }
    }

    #[test]
    fn reported_sigma_is_a_valid_partial_partition() {
        // The sparse sigma map returned by the game, read as a partial
        // beta-partition of the whole graph, must satisfy Definition 3.5.
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let graph = generators::preferential_attachment(200, 2, &mut rng);
        let beta = 5;
        for root in (0..graph.num_nodes()).step_by(17) {
            let result = play(&graph, root, CoinGameConfig::new(4, beta));
            let merged = crate::merge::merge_min(graph.num_nodes(), beta, [&result.sigma]);
            assert!(merged.validate(&graph).is_ok(), "root {root}");
        }
    }

    #[test]
    fn query_count_tracks_exploration() {
        let graph = generators::complete_kary_tree(4, 3);
        let result = play(&graph, 0, CoinGameConfig::new(6, 3));
        // Queries = sum over explored nodes of (degree + 1).
        let expected: usize = result.explored.iter().map(|&v| graph.degree(v) + 1).sum();
        assert_eq!(result.queries, expected);
        assert!(result.discovered_edges <= graph.num_edges());
        assert!(result.super_iterations_run <= 36);
    }

    #[test]
    fn query_budget_violations_surface_as_errors() {
        let graph = generators::complete_kary_tree(4, 4);
        let oracle = LcaOracle::with_budget(&graph, 30);
        let outcome = CoinGame::new(&oracle, CoinGameConfig::new(16, 3)).run(0);
        assert!(matches!(
            outcome,
            Err(ModelError::QueryBudgetExceeded { budget: 30 })
        ));
    }

    #[test]
    fn isolated_node_is_its_own_partition() {
        let graph = CsrGraph::empty(3);
        let result = play(&graph, 1, CoinGameConfig::new(4, 2));
        assert_eq!(result.sigma_root, Layer::Finite(0));
        assert_eq!(result.explored, vec![1]);
        assert_eq!(result.discovered_edges, 0);
    }
}
