//! The `S`-induced and natural β-partitions (Definitions 3.6 and 3.12).

use sparse_graph::{CsrGraph, NodeId};

use crate::beta::BetaPartition;
use crate::layer::Layer;

/// Computes the `S`-induced β-partition `σ_{S,β}` of Definition 3.6.
///
/// Starting with every node at layer `∞`, round `i` simultaneously assigns
/// layer `i` to every still-unassigned node of `S` that has at most `β`
/// neighbors (in the *whole* graph `G`) whose current layer is `∞`. Nodes
/// outside `S` keep layer `∞` forever, so they permanently count towards
/// their neighbors' budgets.
///
/// The implementation is the standard linear-time peeling: it maintains, for
/// every node, the number of `∞` neighbors and processes layers level by
/// level, so the total work is `O(n + m)`.
///
/// # Panics
///
/// Panics if `in_s.len() != graph.num_nodes()`.
///
/// # Examples
///
/// ```
/// use beta_partition::{induced_partition, Layer};
/// use sparse_graph::CsrGraph;
///
/// let g = CsrGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
/// // Restrict to S = {0, 1, 2}: node 3 stays ∞ and burdens node 2.
/// let sigma = induced_partition(&g, &[true, true, true, false], 1);
/// assert_eq!(sigma.layer(0), Layer::Finite(0));
/// assert_eq!(sigma.layer(1), Layer::Finite(1));
/// assert_eq!(sigma.layer(2), Layer::Finite(2));
/// assert_eq!(sigma.layer(3), Layer::Infinite);
/// ```
pub fn induced_partition(graph: &CsrGraph, in_s: &[bool], beta: usize) -> BetaPartition {
    let n = graph.num_nodes();
    assert_eq!(in_s.len(), n, "membership vector must cover every node");

    let mut partition = BetaPartition::all_infinite(n, beta);
    // Number of neighbors currently at layer ∞ (everything, initially).
    let mut infinite_neighbors: Vec<usize> = (0..n).map(|v| graph.degree(v)).collect();
    let mut assigned = vec![false; n];

    // Level 0 candidates: nodes of S with at most beta neighbors overall.
    let mut current: Vec<NodeId> = (0..n)
        .filter(|&v| in_s[v] && infinite_neighbors[v] <= beta)
        .collect();

    let mut level = 0usize;
    while !current.is_empty() {
        // Assign the whole level simultaneously (the definition evaluates the
        // condition against sigma at the beginning of the iteration).
        for &v in &current {
            partition.set_layer(v, Layer::Finite(level));
            assigned[v] = true;
        }
        let mut next: Vec<NodeId> = Vec::new();
        for &v in &current {
            for &w in graph.neighbors(v) {
                infinite_neighbors[w] -= 1;
                if in_s[w] && !assigned[w] && infinite_neighbors[w] == beta {
                    // w just dropped to exactly beta ∞-neighbors: it becomes
                    // a candidate for the next level (it was not one before,
                    // because its count was > beta).
                    next.push(w);
                }
            }
        }
        current = next;
        level += 1;
    }

    partition
}

/// Computes the natural β-partition `ℓ_β = σ_{V,β}` (Definition 3.12): the
/// `S`-induced partition with `S = V`, which assigns the lowest possible
/// layer to every node among all induced β-partitions (Lemma 3.13).
///
/// For `β ≥ (2 + ε)α` this is exactly the H-partition of Barenboim–Elkin and
/// has `O(log n)` layers.
pub fn natural_partition(graph: &CsrGraph, beta: usize) -> BetaPartition {
    let in_s = vec![true; graph.num_nodes()];
    induced_partition(graph, &in_s, beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sparse_graph::generators;

    #[test]
    fn natural_partition_on_a_star() {
        // Star: leaves have degree 1 -> layer 0; the hub then has no ∞
        // neighbors left -> layer 1 (for beta >= 1).
        let g = generators::star(6);
        let p = natural_partition(&g, 1);
        assert_eq!(p.layer(0), Layer::Finite(1));
        for leaf in 1..6 {
            assert_eq!(p.layer(leaf), Layer::Finite(0));
        }
        assert!(p.validate(&g).is_ok());
        assert!(!p.is_partial());
    }

    #[test]
    fn natural_partition_is_a_valid_beta_partition() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for k in [1usize, 2, 4] {
            let g = generators::forest_union(300, k, &mut rng);
            let beta = 2 * k + 1; // (2 + eps) * alpha with eps ~ 1/k... >= 2k+1 > 2 alpha
            let p = natural_partition(&g, beta);
            assert!(p.validate(&g).is_ok(), "k = {k}");
            assert!(
                !p.is_partial(),
                "k = {k}: natural partition must be complete"
            );
            // Size bound O(log n): loose explicit check.
            assert!(
                p.size() <= 4 * (300f64.log2() as usize + 1),
                "k = {k}, size = {}",
                p.size()
            );
        }
    }

    #[test]
    fn partition_stalls_when_beta_below_degeneracy() {
        // K5 with beta = 2: every node always has 4 > 2 ∞-neighbors, so the
        // natural 2-partition of K5 leaves everything at ∞.
        let g = generators::complete(5);
        let p = natural_partition(&g, 2);
        assert!(p.is_partial());
        assert_eq!(p.infinite_nodes().len(), 5);
        // beta = 4 peels everything in one level.
        let p = natural_partition(&g, 4);
        assert!(!p.is_partial());
        assert_eq!(p.size(), 1);
    }

    #[test]
    fn induced_partition_is_monotone_in_s() {
        // Lemma 3.8: sigma_{S} >= sigma_{T} pointwise when S ⊆ T.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generators::forest_union(120, 2, &mut rng);
        let beta = 5;
        let mut in_s = vec![false; 120];
        in_s[..60].fill(true);
        let small = induced_partition(&g, &in_s, beta);
        let large = natural_partition(&g, beta);
        for v in 0..120 {
            assert!(
                small.layer(v) >= large.layer(v),
                "node {v}: sigma_S = {:?} < sigma_V = {:?}",
                small.layer(v),
                large.layer(v)
            );
        }
    }

    #[test]
    fn nodes_outside_s_stay_infinite() {
        let g = CsrGraph::from_edges(3, [(0, 1), (1, 2)]);
        let sigma = induced_partition(&g, &[true, false, true], 2);
        assert_eq!(sigma.layer(1), Layer::Infinite);
        assert!(sigma.layer(0).is_finite());
        assert!(sigma.layer(2).is_finite());
        assert!(sigma.validate(&g).is_ok());
    }

    #[test]
    fn degree_bounded_nodes_form_layer_zero() {
        // Lemma 3.14 base case: deg(v) <= beta  =>  natural layer 0.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = generators::forest_union(200, 3, &mut rng);
        let beta = 7;
        let p = natural_partition(&g, beta);
        for v in g.nodes() {
            if g.degree(v) <= beta {
                assert_eq!(p.layer(v), Layer::Finite(0));
            }
        }
    }

    #[test]
    #[should_panic(expected = "membership vector")]
    fn membership_vector_must_match() {
        let g = CsrGraph::empty(3);
        induced_partition(&g, &[true, true], 1);
    }
}
