//! The sublinear deterministic LCA for partial β-partitions
//! (Lemma 4.7 / Remark 4.8).

use std::collections::HashMap;

use ampc_model::{LcaOracle, ModelError};
use sparse_graph::{CsrGraph, NodeId};

use crate::coin_game::{CoinGame, CoinGameConfig, CoinGameResult};
use crate::layer::Layer;

/// Output of one LCA invocation for a queried node (Remark 4.8).
///
/// Besides its own layer, the LCA outputs a *proof*: a partial β-partition
/// `ℓ_u` on the subgraph it explored, restricted to layers at most
/// [`LcaPartitionOutput::layer_cap`]. Merging the proofs of many nodes with
/// the global minimum function (Lemma 4.10) yields a globally consistent
/// partial β-partition — this is exactly what the AMPC algorithm of
/// Theorem 1.2 does with these outputs.
#[derive(Debug, Clone)]
pub struct LcaPartitionOutput {
    /// The queried node.
    pub root: NodeId,
    /// Layers strictly above this cap are reported as `∞`
    /// (`⌊log_{β+1} x⌋` by default, Lemma 4.7).
    pub layer_cap: usize,
    /// The proof partition `ℓ_u`: finite layers (≤ cap) for explored nodes;
    /// every node absent from the map is at `∞`.
    pub proof: HashMap<NodeId, usize>,
    /// The queried node's own (capped) layer.
    pub root_layer: Layer,
    /// Number of LCA queries issued.
    pub queries: usize,
    /// Number of nodes explored (`|S_v|`).
    pub explored: usize,
    /// Number of super-iterations the coin game executed.
    pub super_iterations: usize,
}

impl LcaPartitionOutput {
    fn from_game(result: CoinGameResult, layer_cap: usize) -> Self {
        let proof: HashMap<NodeId, usize> = result
            .sigma
            .iter()
            .filter(|&(_, &layer)| layer <= layer_cap)
            .map(|(&node, &layer)| (node, layer))
            .collect();
        let root_layer = match result.sigma_root {
            Layer::Finite(layer) if layer <= layer_cap => Layer::Finite(layer),
            _ => Layer::Infinite,
        };
        LcaPartitionOutput {
            root: result.root,
            layer_cap,
            proof,
            root_layer,
            queries: result.queries,
            explored: result.explored.len(),
            super_iterations: result.super_iterations_run,
        }
    }
}

/// Runs the deterministic LCA of Lemma 4.7 / Remark 4.8 for a single node.
///
/// The LCA plays the `(x, β, F)`-coin dropping game from `root`, computes
/// the `S_v`-induced β-partition of the explored subgraph and reports every
/// explored node whose layer is at most `⌊log_{β+1} x⌋` (the cap from the
/// lemma; configurable through [`CoinGameConfig::with_layer_cap`]).
///
/// # Errors
///
/// Propagates [`ModelError::QueryBudgetExceeded`] if `oracle` enforces a
/// budget that the exploration exhausts.
///
/// # Examples
///
/// ```
/// use ampc_model::LcaOracle;
/// use beta_partition::{partial_partition_lca, CoinGameConfig, Layer};
/// use sparse_graph::generators;
///
/// let graph = generators::star(30);
/// let oracle = LcaOracle::new(&graph);
/// let output = partial_partition_lca(&oracle, 7, &CoinGameConfig::new(8, 3))?;
/// assert_eq!(output.root_layer, Layer::Finite(0)); // a leaf sits on layer 0
/// assert!(output.proof.contains_key(&7));
/// # Ok::<(), ampc_model::ModelError>(())
/// ```
pub fn partial_partition_lca(
    oracle: &LcaOracle<'_>,
    root: NodeId,
    config: &CoinGameConfig,
) -> Result<LcaPartitionOutput, ModelError> {
    let layer_cap = config.effective_layer_cap();
    let game = CoinGame::new(oracle, *config);
    let result = game.run(root)?;
    Ok(LcaPartitionOutput::from_game(result, layer_cap))
}

/// Convenience driver running the LCA for *every* node of a graph and
/// reporting aggregate statistics — the measurement behind experiment E1
/// (the fraction of nodes the LCA manages to layer, and its query cost).
///
/// Returns the per-node outputs in node order.
///
/// # Errors
///
/// Propagates the first query-budget violation.
pub fn lca_for_all_nodes(
    graph: &CsrGraph,
    config: &CoinGameConfig,
) -> Result<Vec<LcaPartitionOutput>, ModelError> {
    let oracle = LcaOracle::new(graph);
    graph
        .nodes()
        .map(|v| partial_partition_lca(&oracle, v, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::induced::natural_partition;
    use crate::merge::merge_min;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use sparse_graph::generators;

    #[test]
    fn proof_layers_respect_the_cap() {
        let graph = generators::complete_kary_tree(4, 3);
        let oracle = LcaOracle::new(&graph);
        let config = CoinGameConfig::new(16, 3); // cap = 2 < natural depth 3
        let output = partial_partition_lca(&oracle, 0, &config).unwrap();
        assert_eq!(output.layer_cap, 2);
        assert!(output.proof.values().all(|&l| l <= 2));
        // The root's natural layer is 3 > cap, so it must report ∞.
        assert_eq!(output.root_layer, Layer::Infinite);
    }

    #[test]
    fn merged_proofs_form_a_valid_partial_partition() {
        // Remark 4.8: min-merging all per-node proofs is a valid partial
        // beta-partition of the whole graph.
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let graph = generators::forest_union(120, 2, &mut rng);
        let beta = 5;
        let config = CoinGameConfig::new(6, beta);
        let outputs = lca_for_all_nodes(&graph, &config).unwrap();
        let proofs: Vec<&HashMap<NodeId, usize>> = outputs.iter().map(|o| &o.proof).collect();
        let merged = merge_min(graph.num_nodes(), beta, proofs.iter().copied());
        assert!(merged.validate(&graph).is_ok());
        // Every node that reported a finite layer for itself is finite in the
        // merge (Lemma 4.10, "moreover" part).
        for output in &outputs {
            if output.root_layer.is_finite() {
                assert!(merged.layer(output.root).is_finite());
            }
        }
    }

    #[test]
    fn most_nodes_receive_a_layer_on_bounded_arboricity_graphs() {
        // The quantitative content of Lemma 4.7: a large fraction of nodes is
        // layered. On a 2-forest with beta = 5 and x = 8 the overwhelming
        // majority of nodes has a small dependency graph and a small natural
        // layer, so well over half must succeed.
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let graph = generators::forest_union(240, 2, &mut rng);
        let config = CoinGameConfig::new(6, 5);
        let outputs = lca_for_all_nodes(&graph, &config).unwrap();
        let layered = outputs.iter().filter(|o| o.root_layer.is_finite()).count();
        assert!(
            layered * 2 > graph.num_nodes(),
            "only {layered}/{} nodes layered",
            graph.num_nodes()
        );
    }

    #[test]
    fn lca_layer_never_beats_the_natural_layer() {
        // Lemma 3.13 carried through the LCA: a reported finite layer is at
        // least the node's natural layer (and equals it when Lemma 4.4's
        // preconditions hold).
        let graph = generators::complete_kary_tree(3, 3);
        let beta = 2;
        let natural = natural_partition(&graph, beta);
        let config = CoinGameConfig::new(27, beta); // cap = log_3(27) = 3
        let outputs = lca_for_all_nodes(&graph, &config).unwrap();
        for output in &outputs {
            if let Layer::Finite(reported) = output.root_layer {
                let Layer::Finite(natural_layer) = natural.layer(output.root) else {
                    panic!("natural partition of a tree is complete");
                };
                assert!(reported >= natural_layer);
            }
        }
        // The root has dependency graph of size 40 <= x^2 and natural layer
        // 3 <= cap, so by Lemma 4.4 it must be layered exactly.
        assert_eq!(outputs[0].root_layer, natural.layer(0));
    }

    #[test]
    fn query_complexity_stays_sublinear_per_node() {
        let mut rng = ChaCha8Rng::seed_from_u64(29);
        let graph = generators::forest_union(1_500, 2, &mut rng);
        let config = CoinGameConfig::new(4, 5);
        let outputs = lca_for_all_nodes(&graph, &config).unwrap();
        let max_queries = outputs.iter().map(|o| o.queries).max().unwrap();
        // x = 4 explores at most x new nodes per super-iteration over x^2
        // super-iterations (at most 65 nodes), so the per-node query count
        // stays far below n = 1500.
        assert!(
            max_queries < graph.num_nodes() / 2,
            "max queries {max_queries} not sublinear"
        );
    }
}
