//! Unknown-arboricity scenario: the graph arrives from an external pipeline
//! and nobody knows its arboricity. Lemma 5.1's guessing scheme finds a
//! β-partition anyway, and the builder can also fall back to the degeneracy
//! estimate.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example streaming_forests
//! ```

use ampc_coloring_repro::{SparseColoring, Workload};
use sparse_graph::ArboricityEstimate;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Pretend we do not know k: the workload mixes several forest unions.
    for (seed, k) in [(11u64, 1usize), (12, 3), (13, 6)] {
        let workload = Workload::ForestUnion { n: 1_500, k };
        let graph = workload.build(seed);
        let estimate = ArboricityEstimate::of(&graph);

        println!("== hidden arboricity workload (true k = {k}) ==");
        println!(
            "density lower bound = {}, degeneracy upper bound = {}",
            estimate.lower, estimate.upper
        );

        let colorer = SparseColoring::new().epsilon(0.5);
        let guess = colorer.beta_partition_unknown_alpha(&graph)?;
        println!(
            "guessing scheme chose alpha = {} (beta = {}), {} sequential + {} parallel rounds",
            guess.chosen_alpha, guess.chosen_beta, guess.sequential_rounds, guess.parallel_rounds
        );
        for attempt in &guess.attempts {
            println!(
                "   guess alpha = {:>4} (beta = {:>4}) -> {} in {} rounds [{}]",
                attempt.alpha,
                attempt.beta,
                if attempt.success { "ok " } else { "fail" },
                attempt.rounds,
                if attempt.sequential {
                    "sequential"
                } else {
                    "parallel"
                },
            );
        }
        assert!(guess.result.partition.validate(&graph).is_ok());

        // And color using the estimated arboricity (degeneracy).
        let outcome = colorer.color(&graph)?;
        assert!(outcome.coloring.is_proper(&graph));
        println!(
            "coloring with estimated alpha = {}: {} colors in {} AMPC rounds\n",
            outcome.alpha, outcome.colors_used, outcome.total_rounds
        );
    }
    Ok(())
}
