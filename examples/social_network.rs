//! Social-network scenario: a heavy-tailed (power-law-like) graph where the
//! maximum degree is orders of magnitude larger than the arboricity.
//!
//! Degree-based coloring algorithms budget `∆ + 1` colors; the paper's
//! algorithms budget `O(α)` colors. This example quantifies the gap and
//! shows the round/color trade-off across the three Theorem 1.3 variants.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use ampc_coloring_repro::{Algorithm, SparseColoring, Workload};
use sparse_graph::ArboricityEstimate;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::PowerLaw {
        n: 5_000,
        edges_per_node: 3,
    };
    let graph = workload.build(7);
    let estimate = ArboricityEstimate::of(&graph);

    println!("== synthetic social network ==");
    println!(
        "nodes / edges    : {} / {}",
        graph.num_nodes(),
        graph.num_edges()
    );
    println!("max degree (Δ)   : {}", graph.max_degree());
    println!(
        "arboricity (α)   : between {} and {} (density / degeneracy bounds)",
        estimate.lower, estimate.upper
    );
    println!();
    println!(
        "{:<42} {:>8} {:>8} {:>8} {:>8}",
        "algorithm", "colors", "beta", "rounds", "layers"
    );

    let variants = [
        Algorithm::AlphaPower,
        Algorithm::AlphaSquared,
        Algorithm::TwoAlphaPlusOne,
    ];
    for algorithm in variants {
        let outcome = SparseColoring::new()
            .algorithm(algorithm)
            .alpha(workload.alpha_bound())
            .epsilon(0.5)
            .color(&graph)?;
        assert!(outcome.coloring.is_proper(&graph));
        println!(
            "{:<42} {:>8} {:>8} {:>8} {:>8}",
            outcome.algorithm,
            outcome.colors_used,
            outcome.beta,
            outcome.total_rounds,
            outcome.partition_size
        );
    }

    // Baselines.
    let id_greedy = sparse_graph::greedy_by_id_order(&graph);
    let degeneracy_greedy = sparse_graph::greedy_by_degeneracy_order(&graph);
    println!(
        "{:<42} {:>8} {:>8} {:>8} {:>8}",
        "greedy by id (sequential baseline)",
        id_greedy.num_colors(),
        "-",
        "-",
        "-"
    );
    println!(
        "{:<42} {:>8} {:>8} {:>8} {:>8}",
        "greedy by degeneracy order (sequential)",
        degeneracy_greedy.num_colors(),
        "-",
        "-",
        "-"
    );
    println!();
    println!(
        "Δ + 1 = {} colors would be budgeted by degree-based algorithms; the arboricity-aware \
         AMPC algorithms stay at O(α) – O(α²) colors.",
        graph.max_degree() + 1
    );
    Ok(())
}
