//! Quickstart: color a sparse graph with arboricity-dependent palettes.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ampc_coloring_repro::{Algorithm, SparseColoring, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A union of 3 random spanning forests: arboricity at most 3, but the
    // maximum degree grows with n — the regime the paper targets.
    let workload = Workload::ForestUnion { n: 2_000, k: 3 };
    let graph = workload.build(42);
    println!("workload        : {}", workload.label());
    println!(
        "nodes / edges   : {} / {}",
        graph.num_nodes(),
        graph.num_edges()
    );
    println!("max degree      : {}", graph.max_degree());

    // The headline algorithm: ((2 + eps) * alpha + 1) colors.
    let outcome = SparseColoring::new()
        .algorithm(Algorithm::TwoAlphaPlusOne)
        .alpha(workload.alpha_bound())
        .epsilon(0.5)
        .color(&graph)?;

    assert!(outcome.coloring.is_proper(&graph));
    println!();
    println!("algorithm       : {}", outcome.algorithm);
    println!("colors used     : {}", outcome.colors_used);
    println!("beta            : {}", outcome.beta);
    println!("partition rounds: {}", outcome.partition_rounds);
    println!("partition layers: {}", outcome.partition_size);
    println!("coloring rounds : {}", outcome.coloring_rounds);
    println!("total rounds    : {}", outcome.total_rounds);

    // Compare against the degree-based baseline.
    let baseline = sparse_graph::greedy_by_id_order(&graph);
    println!();
    println!(
        "baseline (greedy by id): {} colors vs {} for the AMPC algorithm (Δ + 1 would allow {})",
        baseline.num_colors(),
        outcome.colors_used,
        graph.max_degree() + 1
    );
    Ok(())
}
