//! Road-network scenario: planar graphs have arboricity at most 3, so
//! Corollary 1.4 gives a constant-time AMPC algorithm with a constant number
//! of colors — independently of how large the network grows.
//!
//! The example also inspects the β-partition itself: its layers, the acyclic
//! orientation it induces, and the Nash–Williams forest decomposition
//! obtained from that orientation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example road_network
//! ```

use ampc_coloring_repro::{Algorithm, SparseColoring, Workload};
use sparse_graph::forest_decomposition;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== planar 'road network' (triangulated grid) ==");
    println!(
        "{:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "nodes", "edges", "colors", "rounds", "layers", "out-deg", "forests"
    );

    for side in [20usize, 40, 60] {
        let workload = Workload::PlanarGrid { side };
        let graph = workload.build(0);

        let colorer = SparseColoring::new()
            .algorithm(Algorithm::TwoAlphaPlusOne)
            .alpha(workload.alpha_bound())
            .epsilon(0.5);

        let outcome = colorer.color(&graph)?;
        assert!(outcome.coloring.is_proper(&graph));

        // Inspect the partition: orientation and forest decomposition.
        let partition = colorer.beta_partition(&graph)?;
        let orientation = partition.partition.orientation(&graph)?;
        let forests = forest_decomposition(&graph, &orientation)?;
        assert!(forests.all_classes_are_forests());

        println!(
            "{:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            graph.num_nodes(),
            graph.num_edges(),
            outcome.colors_used,
            outcome.total_rounds,
            outcome.partition_size,
            orientation.max_out_degree(),
            forests.num_forests()
        );
    }

    println!();
    println!(
        "The number of colors and AMPC rounds stays flat as the network grows — the constant-time, \
         constant-color regime of Corollary 1.4 for bounded-arboricity graphs."
    );
    Ok(())
}
